// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sec. VII). Each bench runs the corresponding experiment at a
// reduced-but-faithful scale and reports the figure's headline quantities as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. cmd/expsweep runs the same experiments
// at full scale with pretty tables; EXPERIMENTS.md records paper-vs-measured
// for each artefact.
package mlorass_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mlorass"
	"mlorass/internal/experiment"
	"mlorass/internal/gwplan"
	"mlorass/internal/obs"
	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/telemetry"
)

// benchConfig is the reduced-scale scenario the benches run: a dense small
// world (density-preserving downscale, see DESIGN.md §5) over 6 simulated
// hours spanning the morning ramp and midday plateau.
func benchConfig(seed uint64) experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Seed = seed
	cfg.AreaSideM = 8000
	cfg.NumRoutes = 18
	cfg.PeakHeadway = 10 * time.Minute
	cfg.Duration = 6 * time.Hour
	cfg.NumGateways = 7
	return cfg
}

func runBench(b *testing.B, cfg experiment.Config) *experiment.Result {
	b.Helper()
	res, err := experiment.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig7ActiveBuses regenerates Fig. 7: the synthetic dataset's
// active-bus curve and shift-duration distribution.
func BenchmarkFig7ActiveBuses(b *testing.B) {
	var peak, total int
	for i := 0; i < b.N; i++ {
		active, hist, err := experiment.Fig7Data(1, 45, 6*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, n := range active {
			if n > peak {
				peak = n
			}
		}
		total = int(hist.N())
	}
	b.ReportMetric(float64(peak), "peak-buses")
	b.ReportMetric(float64(total), "shifts")
}

// BenchmarkFig8Delay regenerates Fig. 8: mean end-to-end delay per scheme at
// a low gateway density, urban and rural.
func BenchmarkFig8Delay(b *testing.B) {
	for _, env := range []experiment.Environment{experiment.Urban, experiment.Rural} {
		for _, scheme := range experiment.Schemes() {
			name := fmt.Sprintf("%s/%s", env, scheme)
			b.Run(name, func(b *testing.B) {
				var delay float64
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(1)
					cfg.Environment = env
					cfg.D2DRangeM = 0
					cfg.Scheme = scheme
					delay = runBench(b, cfg).Delay.Mean()
				}
				b.ReportMetric(delay, "delay-s")
			})
		}
	}
}

// BenchmarkFig9Throughput regenerates Fig. 9: total messages delivered per
// scheme.
func BenchmarkFig9Throughput(b *testing.B) {
	for _, env := range []experiment.Environment{experiment.Urban, experiment.Rural} {
		for _, scheme := range experiment.Schemes() {
			name := fmt.Sprintf("%s/%s", env, scheme)
			b.Run(name, func(b *testing.B) {
				var delivered int
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(1)
					cfg.Environment = env
					cfg.D2DRangeM = 0
					cfg.Scheme = scheme
					delivered = runBench(b, cfg).Delivered
				}
				b.ReportMetric(float64(delivered), "delivered")
			})
		}
	}
}

// BenchmarkFig10UrbanSeries regenerates Fig. 10: the urban per-10-minute
// arrival series; the reported metric is the daytime-window arrival count.
func BenchmarkFig10UrbanSeries(b *testing.B) {
	benchSeries(b, experiment.Urban)
}

// BenchmarkFig11RuralSeries regenerates Fig. 11: the rural arrival series.
func BenchmarkFig11RuralSeries(b *testing.B) {
	benchSeries(b, experiment.Rural)
}

func benchSeries(b *testing.B, env experiment.Environment) {
	for _, scheme := range experiment.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			var daytime int
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Environment = env
				cfg.D2DRangeM = 0
				cfg.Scheme = scheme
				res := runBench(b, cfg)
				// The paper highlights the 20k–75k s window; the
				// 6 h bench covers its start.
				daytime = res.Throughput.WindowSum(2*time.Hour, 6*time.Hour)
			}
			b.ReportMetric(float64(daytime), "daytime-msgs")
		})
	}
}

// BenchmarkFig12Hops regenerates Fig. 12: mean hop count per scheme.
func BenchmarkFig12Hops(b *testing.B) {
	for _, scheme := range experiment.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			var hops, maxHops float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Environment = experiment.Rural
				cfg.D2DRangeM = 0
				cfg.Scheme = scheme
				res := runBench(b, cfg)
				hops = res.Hops.Mean()
				maxHops = res.Hops.Max()
			}
			b.ReportMetric(hops, "hops")
			b.ReportMetric(maxHops, "max-hops")
		})
	}
}

// BenchmarkFig13Overhead regenerates Fig. 13: mean message copies sent per
// node; the forwarding schemes' paper band is 1.6–2.2x the baseline.
func BenchmarkFig13Overhead(b *testing.B) {
	for _, scheme := range experiment.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			var sends float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Environment = experiment.Rural
				cfg.D2DRangeM = 0
				cfg.Scheme = scheme
				sends = runBench(b, cfg).MsgSendsPerNode.Mean()
			}
			b.ReportMetric(sends, "sends-per-node")
		})
	}
}

// BenchmarkAblationAlpha sweeps the EWMA weight α (Sec. IV-B): the
// adaptation-vs-stability trade the paper discusses.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Scheme = routing.SchemeROBC
				cfg.Alpha = alpha
				delay = runBench(b, cfg).Delay.Mean()
			}
			b.ReportMetric(delay, "delay-s")
		})
	}
}

// BenchmarkAblationQueueClassA compares Modified Class-C against Queue-based
// Class-A (Sec. VII-C: on-par performance, some radio-on energy saved).
func BenchmarkAblationQueueClassA(b *testing.B) {
	for _, class := range []mlorass.DeviceClass{mlorass.ClassModifiedC, mlorass.ClassQueueA} {
		b.Run(class.String(), func(b *testing.B) {
			var radioOn, delivered float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Scheme = routing.SchemeROBC
				cfg.Class = class
				res := runBench(b, cfg)
				radioOn = res.RadioOnPerNode.Mean()
				delivered = float64(res.Delivered)
			}
			b.ReportMetric(radioOn, "radio-on-s")
			b.ReportMetric(delivered, "delivered")
		})
	}
}

// BenchmarkAblationRandomGateways compares grid against random placement
// (Sec. VII-C's further observations).
func BenchmarkAblationRandomGateways(b *testing.B) {
	strategies := []struct {
		name     string
		strategy gwplan.Strategy
	}{
		{"grid", gwplan.Grid},
		{"random", gwplan.Random},
		{"route-aware", gwplan.RouteAware},
	}
	for _, st := range strategies {
		st := st
		b.Run(st.name, func(b *testing.B) {
			var delivered float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Scheme = routing.SchemeROBC
				cfg.GatewayStrategy = st.strategy
				delivered = float64(runBench(b, cfg).Delivered)
			}
			b.ReportMetric(delivered, "delivered")
		})
	}
}

// BenchmarkParallelSweep measures the sweep engine's scaling: the same
// 21-cell figure grid run with one worker (the serial engine) and with a
// full worker pool. Every cell is an independently seeded simulation, so the
// speedup should track the worker count until the machine saturates.
func BenchmarkParallelSweep(b *testing.B) {
	sweepBase := func() experiment.Config {
		cfg := experiment.DefaultConfig()
		cfg.AreaSideM = 5000
		cfg.NumRoutes = 6
		cfg.PeakHeadway = 20 * time.Minute
		cfg.Duration = 2 * time.Hour
		return cfg
	}
	pool := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pool = append(pool, n)
	}
	for _, workers := range pool {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var delivered float64
			for i := 0; i < b.N; i++ {
				points, err := experiment.ParallelSweep(sweepBase(), experiment.Urban,
					experiment.SweepOptions{Workers: workers, Reps: 1})
				if err != nil {
					b.Fatal(err)
				}
				delivered = 0
				for _, p := range points {
					delivered += p.Agg.Delivered.Mean()
				}
			}
			b.ReportMetric(delivered, "delivered")
		})
	}
}

// BenchmarkReplicatedSweep measures a multi-seed cell: 5 replications of one
// scenario through the pool, the configuration behind mean ± 95% CI figures.
func BenchmarkReplicatedSweep(b *testing.B) {
	cfg := experiment.DefaultConfig()
	cfg.AreaSideM = 5000
	cfg.NumRoutes = 6
	cfg.PeakHeadway = 20 * time.Minute
	cfg.Duration = 2 * time.Hour
	cfg.Scheme = routing.SchemeROBC
	for i := 0; i < b.N; i++ {
		results := make([]*experiment.Result, 5)
		for rep := range results {
			c := cfg
			c.Seed = experiment.RepSeed(cfg.Seed, rep)
			res, err := experiment.Run(c)
			if err != nil {
				b.Fatal(err)
			}
			results[rep] = res
		}
		agg := experiment.AggregateResults(results)
		b.ReportMetric(agg.Delivered.Mean(), "delivered")
		b.ReportMetric(agg.Delivered.CI95(), "delivered-ci95")
	}
}

// BenchmarkPublicAPIQuick exercises the root-package entry point end to end.
func BenchmarkPublicAPIQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mlorass.QuickConfig()
		cfg.Scheme = mlorass.SchemeROBC
		cfg.Duration = 2 * time.Hour
		if _, err := mlorass.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead proves the tentpole's overhead budget: the same
// scenario with metric recorders off (the pre-telemetry hot path), on (the
// shipped default: counters + delay/airtime histograms, tracing disabled),
// and fully traced to an in-memory sink. The acceptance bar is recorders-on
// within 5% of recorders-off; compare the sub-benchmarks' ns/op.
func BenchmarkTelemetryOverhead(b *testing.B) {
	variants := []struct {
		name      string
		configure func(*experiment.Config)
	}{
		{"off", func(cfg *experiment.Config) { cfg.Telemetry.Disabled = true }},
		{"recorders", func(cfg *experiment.Config) {}},
		{"traced", func(cfg *experiment.Config) {
			cfg.Telemetry.Trace = telemetry.NewTracer(&telemetry.MemSink{}, 1)
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var delivered int
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				cfg.Scheme = routing.SchemeROBC
				v.configure(&cfg)
				delivered = runBench(b, cfg).Delivered
			}
			b.ReportMetric(float64(delivered), "delivered")
		})
	}
}

// BenchmarkRunStoreSweep measures the resumable-sweep win: the same
// replicated grid against a cold store (simulate + persist every cell) and a
// warm one (load every cell). The warm/cold ratio is the recompute cost the
// artifact store deletes from repeated figure regeneration.
func BenchmarkRunStoreSweep(b *testing.B) {
	sweepBase := func() experiment.Config {
		cfg := experiment.DefaultConfig()
		cfg.AreaSideM = 5000
		cfg.NumRoutes = 6
		cfg.PeakHeadway = 20 * time.Minute
		cfg.Duration = 2 * time.Hour
		return cfg
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := runstore.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := experiment.ParallelSweep(sweepBase(), experiment.Urban,
				experiment.SweepOptions{Reps: 2, Store: store}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		store, err := runstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.ParallelSweep(sweepBase(), experiment.Urban,
			experiment.SweepOptions{Reps: 2, Store: store}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			points, err := experiment.ParallelSweep(sweepBase(), experiment.Urban,
				experiment.SweepOptions{Reps: 2, Store: store})
			if err != nil {
				b.Fatal(err)
			}
			if points[0].Agg.Telemetry.Delay.N() == 0 {
				b.Fatal("cached cells lost telemetry")
			}
		}
	})
}

// BenchmarkFullDayRun measures one full-day paper-config run end to end:
// the DefaultConfig 24-hour ROBC scenario, the workload every figure sweep
// is built from. This is the headline wall-clock number of the hot-path
// optimisation work; run it with -benchtime 1x (one iteration is ~tens of
// seconds) and compare BENCH_*.json artefacts across commits.
func BenchmarkFullDayRun(b *testing.B) {
	if testing.Short() {
		b.Skip("full-day run takes tens of seconds; skipped under -short")
	}
	var delivered int
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultConfig()
		cfg.Scheme = routing.SchemeROBC
		delivered = runBench(b, cfg).Delivered
	}
	b.ReportMetric(float64(delivered), "delivered")
}

// benchFullDayShards is BenchmarkFullDayRun on the sharded event kernel:
// the same full-scale day, partitioned into n spatial tiles with one kernel
// goroutine each. The n=1 bench measures the sharded engine's intrinsic
// overhead (windowed merge, keyed draws) against BenchmarkFullDayRun; the
// n=2/4/8 benches measure intra-run scaling. Results are bit-identical for
// every n — the delivered metric must match across the whole family.
func benchFullDayShards(b *testing.B, n int) {
	if testing.Short() {
		b.Skip("full-day run takes tens of seconds; skipped under -short")
	}
	var delivered int
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultConfig()
		cfg.Scheme = routing.SchemeROBC
		cfg.Shards = n
		delivered = runBench(b, cfg).Delivered
	}
	b.ReportMetric(float64(delivered), "delivered")
}

// BenchmarkObsOverhead proves the observability layer's budget: the same
// full-day sharded run with the live layer off (the shipped default — nil
// Spans/Live, the pre-obs hot path) and on (a flight recorder sinking every
// phase span plus a registry scraped at ~10 Hz, the `expsweep -listen` state).
// The acceptance bar is on within 2% of off; compare the sub-benchmarks'
// ns/op. Run with -benchtime 1x like BenchmarkFullDayRun.
func BenchmarkObsOverhead(b *testing.B) {
	if testing.Short() {
		b.Skip("full-day run takes tens of seconds; skipped under -short")
	}
	base := func() experiment.Config {
		cfg := experiment.DefaultConfig()
		cfg.Scheme = routing.SchemeROBC
		cfg.Shards = 2
		return cfg
	}
	b.Run("off", func(b *testing.B) {
		var delivered int
		for i := 0; i < b.N; i++ {
			delivered = runBench(b, base()).Delivered
		}
		b.ReportMetric(float64(delivered), "delivered")
	})
	b.Run("on", func(b *testing.B) {
		var delivered int
		for i := 0; i < b.N; i++ {
			cfg := base()
			reg := obs.NewRegistry()
			flight := obs.NewFlightRecorder(0)
			cfg.Telemetry.Live = reg
			cfg.Telemetry.Spans = flight
			stop := make(chan struct{})
			scraped := make(chan struct{})
			go func() {
				defer close(scraped)
				tick := time.NewTicker(100 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						_ = reg.Snapshot()
					}
				}
			}()
			delivered = runBench(b, cfg).Delivered
			close(stop)
			<-scraped
			if flight.Recorded() == 0 {
				b.Fatal("instrumented run recorded no spans")
			}
		}
		b.ReportMetric(float64(delivered), "delivered")
	})
}

func BenchmarkFullDayRunShards1(b *testing.B) { benchFullDayShards(b, 1) }
func BenchmarkFullDayRunShards2(b *testing.B) { benchFullDayShards(b, 2) }
func BenchmarkFullDayRunShards4(b *testing.B) { benchFullDayShards(b, 4) }
func BenchmarkFullDayRunShards8(b *testing.B) { benchFullDayShards(b, 8) }
