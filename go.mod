module mlorass

go 1.24
