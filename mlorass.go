// Package mlorass is a Go reproduction of "Contact-Aware Opportunistic Data
// Forwarding in Disconnected LoRaWAN Mobile Networks" (Chen, Bhatia, Kolcun,
// Boyle, McCann — ICDCS 2020).
//
// It implements the paper's two contributions — the RCA-ETX network metric
// and the ROBC backpressure forwarding scheme — together with every
// substrate the evaluation needs: a discrete-event simulator, a LoRa PHY
// with collisions and capture, a LoRaWAN MAC with the paper's Modified
// Class-C and Queue-based Class-A device classes, pluggable mobility models
// (the paper's synthetic London bus network, random-waypoint vehicles, and
// duty-cycled sensor grids), a disruption layer scheduling gateway outages
// and device churn, gateway planning, a network server, and the full
// experiment harness regenerating the paper's figures.
//
// This root package is the public API: configure a scenario with Config,
// execute it with Run, and read the measurements from Result. Everything
// the examples and benchmarks use flows through these re-exports; the
// internal packages are implementation detail.
//
// Quickstart:
//
//	cfg := mlorass.QuickConfig()
//	cfg.Scheme = mlorass.SchemeROBC
//	res, err := mlorass.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Report())
package mlorass

import (
	"io"
	"time"

	"mlorass/internal/core"
	"mlorass/internal/disruption"
	"mlorass/internal/experiment"
	"mlorass/internal/geo"
	"mlorass/internal/lorawan"
	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/stats"
	"mlorass/internal/telemetry"
	"mlorass/internal/tfl"
)

// Scheme selects the forwarding scheme under test.
type Scheme = routing.Scheme

// The three evaluated schemes (Sec. VII-A7).
const (
	// SchemeNoRouting is modified LoRaWAN without data forwarding.
	SchemeNoRouting = routing.SchemeNoRouting
	// SchemeRCAETX is greedy forwarding on the RCA-ETX metric (Eq. 1).
	SchemeRCAETX = routing.SchemeRCAETX
	// SchemeROBC is Real-time Opportunistic Backpressure Collection.
	SchemeROBC = routing.SchemeROBC
)

// DeviceClass selects the LoRaWAN device class.
type DeviceClass = lorawan.DeviceClass

// Device classes, including the paper's two proposals (Sec. VI).
const (
	ClassA         = lorawan.ClassA
	ClassB         = lorawan.ClassB
	ClassC         = lorawan.ClassC
	ClassModifiedC = lorawan.ClassModifiedC
	ClassQueueA    = lorawan.ClassQueueA
)

// Environment selects the urban (0.5 km d2d) or rural (1 km d2d) setting.
type Environment = experiment.Environment

// Environments (Sec. VII-A6).
const (
	Urban = experiment.Urban
	Rural = experiment.Rural
)

// Config parameterises one simulation scenario. See experiment.Config for
// field documentation; zero fields take paper defaults.
type Config = experiment.Config

// MobilityModel selects the movement scenario of a run.
type MobilityModel = experiment.MobilityModel

// Mobility models: the paper's timetabled bus fleet (the zero value), a
// random-waypoint vehicle fleet, and a static duty-cycled sensor grid.
const (
	MobilityBuses          = experiment.MobilityBuses
	MobilityRandomWaypoint = experiment.MobilityRandomWaypoint
	MobilitySensorGrid     = experiment.MobilitySensorGrid
)

// MobilityConfig selects and parameterises the movement scenario
// (Config.Mobility); the zero value reproduces the paper's bus fleet.
type MobilityConfig = experiment.MobilityConfig

// DisruptionConfig schedules gateway outage/recovery windows and permanent
// mid-run device churn (Config.Disruption); the zero value keeps the
// infrastructure permanently healthy as in the paper.
type DisruptionConfig = disruption.Config

// ParseMobilityModel resolves a scenario name ("buses", "randomwaypoint",
// "sensorgrid") to its model, matching the cmd/expsweep -scenario flag.
func ParseMobilityModel(s string) (MobilityModel, error) {
	return experiment.ParseMobilityModel(s)
}

// Result carries a run's measurements: delivery counts, delay and hop
// statistics, the throughput time series, and per-node overhead.
type Result = experiment.Result

// SweepPoint is one cell of a figure sweep.
type SweepPoint = experiment.SweepPoint

// Summary is a streaming mean/stddev/min/max accumulator.
type Summary = stats.Summary

// TelemetryOptions selects a run's telemetry behaviour (recorders on by
// default; optional sampled per-packet trace).
type TelemetryOptions = experiment.TelemetryOptions

// TelemetrySnapshot is one run's streamed metrics: counters plus the
// exactly-mergeable delay and airtime histograms.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHistogram is the fixed-layout log-linear histogram behind the
// pooled p50/p95/p99 columns; histograms merge exactly across runs.
type TelemetryHistogram = telemetry.Histogram

// TraceEvent is one per-packet trace record; TraceSink consumes them.
type TraceEvent = telemetry.Event

// TraceSink consumes trace events (JSONL, CSV, or in-memory).
type TraceSink = telemetry.Sink

// NewTracer builds a sampling per-packet tracer over a sink (one in every
// messages; every < 1 traces everything). Wire it into
// Config.Telemetry.Trace.
func NewTracer(sink TraceSink, every int) *telemetry.Tracer {
	return telemetry.NewTracer(sink, every)
}

// NewJSONLTraceSink writes one JSON trace line per event to w.
func NewJSONLTraceSink(w io.Writer) TraceSink { return telemetry.NewJSONLSink(w) }

// NewCSVTraceSink writes trace events as CSV rows to w.
func NewCSVTraceSink(w io.Writer) TraceSink { return telemetry.NewCSVSink(w) }

// RunStore is the content-addressed on-disk run-artifact store behind
// resumable sweeps (SweepOptions.Store).
type RunStore = runstore.Store

// OpenRunStore opens (creating if needed) a run-artifact store directory.
func OpenRunStore(dir string) (*RunStore, error) { return runstore.Open(dir) }

// DefaultConfig returns the paper-shaped 24-hour scenario (density-
// preserving 4x downscale of the 600 km² London world; see DESIGN.md).
func DefaultConfig() Config { return experiment.DefaultConfig() }

// QuickConfig returns a small 4-hour scenario for tests and demos.
func QuickConfig() Config { return experiment.QuickConfig() }

// Run executes one scenario.
func Run(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// SweepFigures runs the Fig. 8/9/12/13 grid for one environment, serially
// with a single seed. For parallel, replicated sweeps use ParallelSweep.
func SweepFigures(base Config, env Environment, progress func(string)) ([]SweepPoint, error) {
	return experiment.SweepFigures(base, env, progress)
}

// SweepOptions configures ParallelSweep: worker-pool size, replications per
// cell, and an optional streamed-progress channel.
type SweepOptions = experiment.SweepOptions

// CellUpdate is one completed replication streamed during a ParallelSweep.
type CellUpdate = experiment.CellUpdate

// AggregatePoint is one sweep cell with per-replication Results and their
// cross-replication Aggregate.
type AggregatePoint = experiment.AggregatePoint

// Aggregate holds cross-replication statistics (mean ± 95% CI per metric).
type Aggregate = experiment.Aggregate

// ParallelSweep runs the figure grid across a worker pool with multi-seed
// replication, collapsing each cell into mean ± 95% CI aggregates in
// deterministic figure order.
func ParallelSweep(base Config, env Environment, opts SweepOptions) ([]AggregatePoint, error) {
	return experiment.ParallelSweep(base, env, opts)
}

// RepSeed derives the seed of replication rep from a base seed
// (replication 0 reuses the base seed).
func RepSeed(base uint64, rep int) uint64 { return experiment.RepSeed(base, rep) }

// AggregateResults collapses replicated run Results into an Aggregate.
func AggregateResults(reps []*Result) *Aggregate { return experiment.AggregateResults(reps) }

// Fig8AggTable, Fig9AggTable, Fig12AggTable and Fig13AggTable render
// replicated sweep results as the paper tables with 95% confidence
// intervals.
func Fig8AggTable(points []AggregatePoint) string  { return experiment.Fig8AggTable(points) }
func Fig9AggTable(points []AggregatePoint) string  { return experiment.Fig9AggTable(points) }
func Fig12AggTable(points []AggregatePoint) string { return experiment.Fig12AggTable(points) }
func Fig13AggTable(points []AggregatePoint) string { return experiment.Fig13AggTable(points) }

// Fig8PercentilesAggTable renders pooled p50/p95/p99 end-to-end delay
// columns from the exactly merged per-replication histograms.
func Fig8PercentilesAggTable(points []AggregatePoint) string {
	return experiment.Fig8PercentilesAggTable(points)
}

// GatewaySweep returns the gateway counts used by the figure sweeps.
func GatewaySweep() []int { return experiment.GatewaySweep() }

// OutagePoint is one (scheme, fraction-of-gateways-down) cell of the
// outage-resilience sweep.
type OutagePoint = experiment.OutagePoint

// OutageFractions returns the gateway-down fractions of the resilience sweep.
func OutageFractions() []float64 { return experiment.OutageFractions() }

// OutageSweep runs the outage-resilience grid (every scheme × gateway-down
// fraction) across a worker pool; workers < 1 means GOMAXPROCS.
func OutageSweep(base Config, env Environment, workers int, progress func(string)) ([]OutagePoint, error) {
	return experiment.OutageSweep(base, env, workers, progress)
}

// OutageTable renders the resilience sweep: delivery ratio per scheme as the
// fraction of gateways down grows.
func OutageTable(points []OutagePoint) string { return experiment.OutageTable(points) }

// MACConfig parameterises the adaptive-data-rate and confirmed-traffic
// subsystem (Config.MAC). The zero value is the paper's uplink-only model,
// byte-identical to a simulator without the MAC control plane.
type MACConfig = experiment.MACConfig

// ADRMode is one column of the ADR sweep (fixed-SF, ADR, ADR+confirmed);
// ADRPoint is one of its (mode, gateway-count) cells.
type (
	ADRMode  = experiment.ADRMode
	ADRPoint = experiment.ADRPoint
)

// ADRModes lists the ADR sweep's MAC configurations in column order.
func ADRModes() []ADRMode { return experiment.ADRModes() }

// ADRSweep runs the adaptive-data-rate grid (every MAC mode × gateway
// count) across a worker pool; workers < 1 means GOMAXPROCS.
func ADRSweep(base Config, env Environment, workers int, progress func(string)) ([]ADRPoint, error) {
	return experiment.ADRSweep(base, env, workers, progress)
}

// ADRTable renders the ADR sweep: delivery ratio, mean uplink SF, and
// retransmissions per MAC mode as gateway density grows.
func ADRTable(points []ADRPoint) string { return experiment.ADRTable(points) }

// Fig8Table, Fig9Table, Fig12Table and Fig13Table render sweep results as
// the corresponding paper tables.
func Fig8Table(points []SweepPoint) string  { return experiment.Fig8Table(points) }
func Fig9Table(points []SweepPoint) string  { return experiment.Fig9Table(points) }
func Fig12Table(points []SweepPoint) string { return experiment.Fig12Table(points) }
func Fig13Table(points []SweepPoint) string { return experiment.Fig13Table(points) }

// GenerateDataset builds the synthetic TFL-like bus dataset used by the
// evaluation; see the tfl package for the CSV interchange format.
func GenerateDataset(seed uint64, numRoutes int, peakHeadway time.Duration) (*tfl.Dataset, error) {
	return tfl.Generate(tfl.DefaultGenConfig(seed, numRoutes, peakHeadway))
}

// Metric construction — the paper's Eqs. 1–6 and 10, exposed for users who
// want the metric without the simulator.

// GatewayConfig parameterises a gateway-quality estimator.
type GatewayConfig = core.GatewayConfig

// GatewayEstimator tracks one device's RCA-ETX(x, S) in real time.
type GatewayEstimator = core.GatewayEstimator

// LinkModel maps overheard RSSI to link capacity and RCA-ETX(x, y).
type LinkModel = core.LinkModel

// NewGatewayEstimator builds an RCA-ETX estimator (Eqs. 2–4).
func NewGatewayEstimator(cfg GatewayConfig) (*GatewayEstimator, error) {
	return core.NewGatewayEstimator(cfg)
}

// DefaultGatewayConfig returns the paper's evaluation parameters (α = 0.5,
// Δt = 3 min).
func DefaultGatewayConfig() GatewayConfig { return core.DefaultGatewayConfig() }

// DefaultLinkModel returns the evaluation's RSSI→capacity ramp (Eq. 5).
func DefaultLinkModel(cmaxPPS float64) LinkModel { return core.DefaultLinkModel(cmaxPPS) }

// ShouldForwardGreedy applies the RCA-ETX forwarding rule (Eq. 1).
func ShouldForwardGreedy(ownETX, neighbourETX, linkETX float64) bool {
	return core.ShouldForwardGreedy(ownETX, neighbourETX, linkETX)
}

// ROBCWeight computes the backpressure weight ω (Eq. 10).
func ROBCWeight(qx, qy int, phiX, phiY float64) float64 {
	return core.ROBCWeight(qx, qy, phiX, phiY)
}

// ROBCTransfer computes the transfer amount δ (Sec. V-B2).
func ROBCTransfer(qx, qy int, phiX, phiY float64) int {
	return core.ROBCTransfer(qx, qy, phiX, phiY)
}

// Dataset re-exports: external users build custom mobility datasets through
// these aliases (the internal packages are not importable).

// Dataset is a day of bus-network routes and vehicle shifts.
type Dataset = tfl.Dataset

// Route is one fixed polyline bus line.
type Route = tfl.Route

// Trip is one vehicle's service shift on a route.
type Trip = tfl.Trip

// Point is a planar position in metres.
type Point = geo.Point

// Area is an axis-aligned rectangle of the planar world.
type Area = geo.Rect

// SquareArea returns a square operating area with the given side in metres.
func SquareArea(side float64) Area { return geo.Square(side) }

// EncodeDataset and DecodeDataset serialise datasets in the CSV interchange
// format, so converted real TFL exports can be dropped in.
func EncodeDataset(w io.Writer, d *Dataset) error { return tfl.Encode(w, d) }

// DecodeDataset parses a dataset written by EncodeDataset.
func DecodeDataset(r io.Reader) (*Dataset, error) { return tfl.Decode(r) }

// Fig8MatchedTable renders the survivorship-corrected delay comparison (see
// experiment.Fig8MatchedTable).
func Fig8MatchedTable(points []SweepPoint) string { return experiment.Fig8MatchedTable(points) }
