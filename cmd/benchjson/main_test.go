package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: mlorass
cpu: Intel Xeon
BenchmarkFig8Delay/urban/NoRouting-8         	      12	  95012345 ns/op	       102.3 delay-s	  524288 B/op	    1024 allocs/op
BenchmarkHistogramAdd-8                      	500000000	         2.104 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	mlorass	12.345s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if art.Env["goos"] != "linux" || art.Env["cpu"] != "Intel Xeon" {
		t.Fatalf("env = %v", art.Env)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(art.Benchmarks))
	}
	b := art.Benchmarks[0]
	if b.Name != "BenchmarkFig8Delay/urban/NoRouting-8" || b.Iterations != 12 || b.Pkg != "mlorass" {
		t.Fatalf("bench[0] = %+v", b)
	}
	wantUnits := []string{"ns/op", "delay-s", "B/op", "allocs/op"}
	if len(b.Metrics) != len(wantUnits) {
		t.Fatalf("metrics = %+v", b.Metrics)
	}
	for i, u := range wantUnits {
		if b.Metrics[i].Unit != u {
			t.Fatalf("metric %d unit = %q, want %q", i, b.Metrics[i].Unit, u)
		}
	}
	if b.Metrics[1].Value != 102.3 {
		t.Fatalf("delay-s = %v", b.Metrics[1].Value)
	}
	if art.Benchmarks[1].Metrics[0].Value != 2.104 {
		t.Fatalf("ns/op = %v", art.Benchmarks[1].Metrics[0].Value)
	}
}

// TestParseMultiPackage covers the CI shape: two packages' outputs
// concatenated — each benchmark keeps its own package.
func TestParseMultiPackage(t *testing.T) {
	input := sampleBench + `
pkg: mlorass/internal/telemetry
BenchmarkRecorderHotPath-8	300000000	         4.2 ns/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	if art.Benchmarks[1].Pkg != "mlorass" {
		t.Fatalf("bench[1].Pkg = %q, want mlorass", art.Benchmarks[1].Pkg)
	}
	if art.Benchmarks[2].Pkg != "mlorass/internal/telemetry" {
		t.Fatalf("bench[2].Pkg = %q", art.Benchmarks[2].Pkg)
	}
	if _, ok := art.Env["pkg"]; ok {
		t.Fatal("pkg leaked into the machine-wide env block")
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	art, err := Parse(strings.NewReader("?   \tmlorass/cmd\t[no test files]\nFAIL\nBenchmarkBroken no numbers here at all\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", art.Benchmarks)
	}
}
