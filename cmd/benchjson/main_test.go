package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: mlorass
cpu: Intel Xeon
BenchmarkFig8Delay/urban/NoRouting-8         	      12	  95012345 ns/op	       102.3 delay-s	  524288 B/op	    1024 allocs/op
BenchmarkHistogramAdd-8                      	500000000	         2.104 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	mlorass	12.345s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if art.Env["goos"] != "linux" || art.Env["cpu"] != "Intel Xeon" {
		t.Fatalf("env = %v", art.Env)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(art.Benchmarks))
	}
	b := art.Benchmarks[0]
	if b.Name != "BenchmarkFig8Delay/urban/NoRouting-8" || b.Iterations != 12 || b.Pkg != "mlorass" {
		t.Fatalf("bench[0] = %+v", b)
	}
	wantUnits := []string{"ns/op", "delay-s", "B/op", "allocs/op"}
	if len(b.Metrics) != len(wantUnits) {
		t.Fatalf("metrics = %+v", b.Metrics)
	}
	for i, u := range wantUnits {
		if b.Metrics[i].Unit != u {
			t.Fatalf("metric %d unit = %q, want %q", i, b.Metrics[i].Unit, u)
		}
	}
	if b.Metrics[1].Value != 102.3 {
		t.Fatalf("delay-s = %v", b.Metrics[1].Value)
	}
	if art.Benchmarks[1].Metrics[0].Value != 2.104 {
		t.Fatalf("ns/op = %v", art.Benchmarks[1].Metrics[0].Value)
	}
}

// TestParseMultiPackage covers the CI shape: two packages' outputs
// concatenated — each benchmark keeps its own package.
func TestParseMultiPackage(t *testing.T) {
	input := sampleBench + `
pkg: mlorass/internal/telemetry
BenchmarkRecorderHotPath-8	300000000	         4.2 ns/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	if art.Benchmarks[1].Pkg != "mlorass" {
		t.Fatalf("bench[1].Pkg = %q, want mlorass", art.Benchmarks[1].Pkg)
	}
	if art.Benchmarks[2].Pkg != "mlorass/internal/telemetry" {
		t.Fatalf("bench[2].Pkg = %q", art.Benchmarks[2].Pkg)
	}
	if _, ok := art.Env["pkg"]; ok {
		t.Fatal("pkg leaked into the machine-wide env block")
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	art, err := Parse(strings.NewReader("?   \tmlorass/cmd\t[no test files]\nFAIL\nBenchmarkBroken no numbers here at all\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", art.Benchmarks)
	}
}

// TestDiff covers the artefact comparison: shared benchmarks get ns/op
// deltas, one-sided benchmarks are reported as new/gone, and package
// qualification keeps same-named benchmarks apart.
func TestDiff(t *testing.T) {
	base := &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", Pkg: "p1", Metrics: []Metric{{Value: 200, Unit: "ns/op"}}},
		{Name: "BenchmarkGone-8", Pkg: "p1", Metrics: []Metric{{Value: 50, Unit: "ns/op"}}},
		{Name: "BenchmarkA-8", Pkg: "p2", Metrics: []Metric{{Value: 1000, Unit: "ns/op"}}},
	}}
	cur := &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", Pkg: "p1", Metrics: []Metric{{Value: 100, Unit: "ns/op"}}},
		{Name: "BenchmarkA-8", Pkg: "p2", Metrics: []Metric{{Value: 1500, Unit: "ns/op"}}},
		{Name: "BenchmarkNew-8", Pkg: "p1", Metrics: []Metric{{Value: 10, Unit: "ns/op"}}},
	}}
	diffs := Diff(base, cur)
	if len(diffs) != 4 {
		t.Fatalf("diff entries = %d, want 4: %+v", len(diffs), diffs)
	}
	if d := diffs[0]; !d.InBoth() || d.DeltaPct() != -50 {
		t.Fatalf("p1/BenchmarkA = %+v, want -50%%", d)
	}
	if d := diffs[1]; !d.InBoth() || d.DeltaPct() != 50 {
		t.Fatalf("p2/BenchmarkA = %+v, want +50%%", d)
	}
	if d := diffs[2]; d.InBoth() || d.NewNs != 10 {
		t.Fatalf("BenchmarkNew = %+v, want new-only", d)
	}
	if d := diffs[3]; d.InBoth() || d.OldNs != 50 {
		t.Fatalf("BenchmarkGone = %+v, want baseline-only", d)
	}
}

// TestRunRegressGate covers the CLI perf gate end to end: a baseline diff
// within threshold passes, a regression beyond it fails, and one-sided
// benchmarks never trip the gate.
func TestRunRegressGate(t *testing.T) {
	dir := t.TempDir()
	writeArtifact := func(name string, ns float64) string {
		path := dir + "/" + name
		art := &Artifact{Benchmarks: []Benchmark{
			{Name: "BenchmarkHot-8", Iterations: 1, Metrics: []Metric{{Value: ns, Unit: "ns/op"}}},
			{Name: "BenchmarkOnly" + name + "-8", Iterations: 1, Metrics: []Metric{{Value: 5, Unit: "ns/op"}}},
		}}
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeArtifact("old.json", 100)
	slowPath := writeArtifact("slow.json", 140)
	okPath := writeArtifact("ok.json", 110)

	if err := run([]string{"-injson", okPath, "-baseline", oldPath, "-regress", "25"}, strings.NewReader("")); err != nil {
		t.Fatalf("10%% regression tripped a 25%% gate: %v", err)
	}
	err := run([]string{"-injson", slowPath, "-baseline", oldPath, "-regress", "25"}, strings.NewReader(""))
	if err == nil {
		t.Fatal("40% regression passed a 25% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkHot-8") {
		t.Fatalf("gate error %q does not name the regressed benchmark", err)
	}
	// Report-only mode (no -regress) never fails.
	if err := run([]string{"-injson", slowPath, "-baseline", oldPath}, strings.NewReader("")); err != nil {
		t.Fatalf("report-only diff failed: %v", err)
	}
	// Text input combines with the gate: parse, write artefact, diff.
	outPath := dir + "/out.json"
	if err := run([]string{"-out", outPath, "-baseline", oldPath, "-regress", "25"},
		strings.NewReader("BenchmarkHot-8 10 105 ns/op\n")); err != nil {
		t.Fatalf("text-input gate run failed: %v", err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("artefact not written in gate mode: %v", err)
	}
	if err := run([]string{"-regress", "25"}, strings.NewReader("")); err == nil {
		t.Fatal("-regress without -baseline accepted")
	}
}

// TestDiffAliased covers the -alias machinery: a renamed benchmark inherits
// its aliased baseline's budget, the consumed baseline entry is not reported
// as gone, and a same-name baseline entry overrides the alias (so the
// mapping retires itself once the baseline carries the new name).
func TestDiffAliased(t *testing.T) {
	aliases := map[string]string{"BenchmarkShards1": "BenchmarkClassic"}
	base := &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkClassic-8", Pkg: "p1", Metrics: []Metric{{Value: 200, Unit: "ns/op"}}},
	}}
	cur := &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkShards1-8", Pkg: "p1", Metrics: []Metric{{Value: 100, Unit: "ns/op"}}},
	}}
	diffs := DiffAliased(base, cur, aliases)
	if len(diffs) != 1 {
		t.Fatalf("diff entries = %d, want 1 (aliased baseline must not also report gone): %+v", len(diffs), diffs)
	}
	if d := diffs[0]; !d.InBoth() || d.OldNs != 200 || d.DeltaPct() != -50 {
		t.Fatalf("aliased diff = %+v, want old=200 delta=-50%%", d)
	}

	// Once the baseline carries the new name, the alias is ignored.
	base.Benchmarks = append(base.Benchmarks,
		Benchmark{Name: "BenchmarkShards1-8", Pkg: "p1", Metrics: []Metric{{Value: 120, Unit: "ns/op"}}})
	diffs = DiffAliased(base, cur, aliases)
	if len(diffs) != 2 {
		t.Fatalf("diff entries = %d, want 2: %+v", len(diffs), diffs)
	}
	if d := diffs[0]; d.OldNs != 120 {
		t.Fatalf("same-name baseline should win over alias: %+v", d)
	}
	// The untouched classic entry now reports as gone.
	if d := diffs[1]; d.InBoth() || d.OldNs != 200 {
		t.Fatalf("classic entry should be baseline-only: %+v", d)
	}

	// Aliases never cross packages.
	cur.Benchmarks[0].Pkg = "p2"
	diffs = DiffAliased(&Artifact{Benchmarks: base.Benchmarks[:1]}, cur, aliases)
	if d := diffs[0]; d.InBoth() {
		t.Fatalf("alias crossed packages: %+v", d)
	}
}

// TestRunAliasGate covers the CLI face of -alias: the regress gate fires on
// the aliased baseline, and -alias validates its shape and -baseline
// dependency.
func TestRunAliasGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, art *Artifact) string {
		path := dir + "/" + name
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkClassic-8", Iterations: 1, Metrics: []Metric{{Value: 100, Unit: "ns/op"}}},
	}})
	slowPath := write("slow.json", &Artifact{Benchmarks: []Benchmark{
		{Name: "BenchmarkShards1-8", Iterations: 1, Metrics: []Metric{{Value: 140, Unit: "ns/op"}}},
	}})

	// Without the alias the new benchmark is one-sided: no gate.
	if err := run([]string{"-injson", slowPath, "-baseline", oldPath, "-regress", "25"},
		strings.NewReader("")); err != nil {
		t.Fatalf("one-sided benchmark tripped the gate: %v", err)
	}
	// With the alias it inherits the classic budget and fails.
	err := run([]string{"-injson", slowPath, "-baseline", oldPath, "-regress", "25",
		"-alias", "BenchmarkShards1=BenchmarkClassic"}, strings.NewReader(""))
	if err == nil {
		t.Fatal("aliased 40% regression passed a 25% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkShards1-8") {
		t.Fatalf("gate error %q does not name the current benchmark", err)
	}

	if err := run([]string{"-injson", slowPath, "-baseline", oldPath,
		"-alias", "NoEqualsSign"}, strings.NewReader("")); err == nil {
		t.Fatal("malformed -alias accepted")
	}
	if err := run([]string{"-injson", slowPath,
		"-alias", "BenchmarkShards1=BenchmarkClassic"}, strings.NewReader("")); err == nil {
		t.Fatal("-alias without -baseline accepted")
	}
}
