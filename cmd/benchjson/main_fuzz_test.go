package main

import (
	"bytes"
	"io"
	"testing"
)

// FuzzInJSONArtifact fuzzes the -injson/-baseline artefact pipeline:
// parseArtifact over arbitrary bytes, then the full diff path (Diff against
// itself and against an empty baseline, WriteDiff, nsPerOp/diffKey) over
// whatever decoded. Malformed JSON must produce an error, never a panic —
// this parser eats CI-uploaded files that may be truncated or not artefacts
// at all. Wired into the CI fuzz-smoke job next to the tfl decoder fuzz.
func FuzzInJSONArtifact(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"benchmarks":[{"name":"BenchmarkX-8","iterations":3,"metrics":[{"value":12.5,"unit":"ns/op"}]}]}`))
	f.Add([]byte(`{"env":{"goos":"linux"},"benchmarks":[{"name":"BenchmarkY","metrics":[{"value":-1,"unit":"ns/op"},{"value":0,"unit":"B/op"}]}]}`))
	f.Add([]byte(`{"benchmarks":[{"name":"B-","metrics":[{"value":1e308,"unit":"ns/op"}]},{"name":"B-","metrics":[{"value":1e-308,"unit":"ns/op"}]}]}`))
	f.Add([]byte(`{"benchmarks":`))
	f.Add([]byte("\x00\xff garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := parseArtifact(data)
		if err != nil {
			return // malformed input must error, not panic
		}
		// Everything downstream of a successful parse must hold up too.
		WriteDiff(io.Discard, Diff(art, art))
		WriteDiff(io.Discard, Diff(&Artifact{}, art))
		WriteDiff(io.Discard, Diff(art, &Artifact{}))
	})
}

// FuzzParseBenchText fuzzes the bench-text parser (the stdin/-in path) the
// same way: arbitrary `go test -bench` output lookalikes must never panic.
func FuzzParseBenchText(f *testing.F) {
	f.Add("goos: linux\npkg: example\nBenchmarkFoo-8  10  12.5 ns/op  3 B/op\nPASS\n")
	f.Add("BenchmarkBare 1\nBenchmark-8 x y\n")
	f.Add("pkg:\ncpu:\n")
	f.Fuzz(func(t *testing.T, text string) {
		art, err := Parse(bytes.NewReader([]byte(text)))
		if err != nil {
			return
		}
		WriteDiff(io.Discard, Diff(art, art))
	})
}
