// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artefact, so CI can upload one BENCH_<sha>.json per commit and
// the repository's performance trajectory (sim hot path ns/op, allocs,
// figure metrics) stays machine-diffable across the whole history.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_abc123.json
//	benchjson -in bench.txt -out bench.json
//
// With -baseline, benchjson additionally diffs the parsed benchmarks
// against a prior artefact: per-benchmark ns/op delta percentages go to
// stderr, and with -regress N the exit status is nonzero when any shared
// benchmark slowed down by more than N percent — the CI perf gate:
//
//	go test -bench . | benchjson -out BENCH_new.json -baseline BENCH_old.json -regress 25
//	benchjson -injson BENCH_new.json -baseline BENCH_old.json
//
// When a benchmark is renamed — or a new benchmark must be gated against a
// prior benchmark's baseline, as when the sharded kernel's
// BenchmarkFullDayRunShards1 inherits BenchmarkFullDayRun's budget — the
// repeatable -alias New=Old flag maps the current name onto the baseline
// name for diffing and the -regress gate:
//
//	benchjson -injson new.json -baseline old.json \
//	    -alias BenchmarkFullDayRunShards1=BenchmarkFullDayRun -regress 25
//
// Non-benchmark lines (PASS, ok, build noise) are ignored; goos/goarch/pkg/
// cpu headers are captured into the artefact's environment block.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Metric is one "value unit" pair of a benchmark line (ns/op, B/op,
// allocs/op, or a custom ReportMetric unit).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkFig8Delay/urban/ROBC-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (the most recent "pkg:"
	// header), so concatenated multi-package bench output stays
	// attributable.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// Metrics holds every reported value in line order.
	Metrics []Metric `json:"metrics"`
}

// Artifact is the JSON document benchjson emits.
type Artifact struct {
	// Env captures the goos/goarch/cpu header lines (machine-wide, so
	// identical across the concatenated packages; per-package context
	// lives in each Benchmark.Pkg).
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks holds every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default: stdin)")
	inJSON := fs.String("injson", "", "read an existing JSON artefact instead of bench text")
	out := fs.String("out", "", "JSON artefact path (default: stdout; with -baseline, default: none)")
	baseline := fs.String("baseline", "", "prior JSON artefact to diff against")
	regress := fs.Float64("regress", -1, "fail (exit nonzero) when any shared benchmark's ns/op grew by more than this percentage; negative = report only")
	aliases := aliasFlag{}
	fs.Var(aliases, "alias", "map a current benchmark onto a baseline name for diffing, as New=Old (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional arguments %q", fs.Args())
	}
	if *in != "" && *inJSON != "" {
		return fmt.Errorf("-in and -injson are mutually exclusive")
	}
	if *regress >= 0 && *baseline == "" {
		return fmt.Errorf("-regress needs -baseline")
	}
	if len(aliases) > 0 && *baseline == "" {
		return fmt.Errorf("-alias needs -baseline")
	}

	var art *Artifact
	if *inJSON != "" {
		a, err := loadArtifact(*inJSON)
		if err != nil {
			return err
		}
		art = a
	} else {
		r := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		a, err := Parse(r)
		if err != nil {
			return err
		}
		art = a
	}

	if *out != "" || *baseline == "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "" {
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}

	if *baseline == "" {
		return nil
	}
	base, err := loadArtifact(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	diffs := DiffAliased(base, art, aliases)
	WriteDiff(os.Stderr, diffs)
	if *regress >= 0 {
		var worst *DiffEntry
		for i := range diffs {
			d := &diffs[i]
			if d.InBoth() && d.DeltaPct() > *regress && (worst == nil || d.DeltaPct() > worst.DeltaPct()) {
				worst = d
			}
		}
		if worst != nil {
			return fmt.Errorf("%s regressed %.1f%% (threshold %.1f%%)",
				worst.Name, worst.DeltaPct(), *regress)
		}
	}
	return nil
}

// loadArtifact reads a JSON artefact produced by a prior benchjson run.
func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art, err := parseArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

// parseArtifact decodes artefact bytes (the -injson / -baseline input). It
// must reject — never panic on — arbitrary input: CI feeds it files that may
// be truncated uploads or not artefacts at all (fuzzed in main_fuzz_test.go).
func parseArtifact(data []byte) (*Artifact, error) {
	art := &Artifact{}
	if err := json.Unmarshal(data, art); err != nil {
		return nil, err
	}
	return art, nil
}

// DiffEntry is one benchmark's old-vs-new comparison. Zero OldNs or NewNs
// marks a benchmark present on only one side.
type DiffEntry struct {
	Name  string
	OldNs float64
	NewNs float64
}

// InBoth reports whether the benchmark has an ns/op on both sides.
func (d DiffEntry) InBoth() bool { return d.OldNs > 0 && d.NewNs > 0 }

// DeltaPct returns the ns/op change in percent (positive = slower).
func (d DiffEntry) DeltaPct() float64 {
	if !d.InBoth() {
		return 0
	}
	return (d.NewNs - d.OldNs) / d.OldNs * 100
}

// nsPerOp extracts a benchmark's primary ns/op metric (0 when absent).
func nsPerOp(b Benchmark) float64 {
	for _, m := range b.Metrics {
		if m.Unit == "ns/op" {
			return m.Value
		}
	}
	return 0
}

// aliasFlag collects the repeatable -alias New=Old mappings (current
// benchmark name → baseline benchmark name, both without the -N suffix).
type aliasFlag map[string]string

func (a aliasFlag) String() string {
	parts := make([]string, 0, len(a))
	for k, v := range a {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (a aliasFlag) Set(s string) error {
	newName, oldName, ok := strings.Cut(s, "=")
	if !ok || newName == "" || oldName == "" {
		return fmt.Errorf("alias %q must be New=Old", s)
	}
	a[newName] = oldName
	return nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix so artefacts recorded
// on machines with different core counts still line up.
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diffKey identifies a benchmark across artefacts.
func diffKey(b Benchmark) string {
	name := stripProcs(b.Name)
	if b.Pkg != "" {
		return b.Pkg + " " + name
	}
	return name
}

// Diff compares two artefacts' ns/op by benchmark name, in the new
// artefact's order, then any baseline-only benchmarks in baseline order.
func Diff(base, cur *Artifact) []DiffEntry {
	return DiffAliased(base, cur, nil)
}

// DiffAliased is Diff with -alias mappings applied: a current benchmark whose
// own name is absent from the baseline falls back to its aliased baseline
// name (same package), and the consumed baseline entry is not reported as
// gone. A same-name baseline entry wins over the alias, so the mapping
// retires itself once the baseline is refreshed with the new name.
func DiffAliased(base, cur *Artifact, aliases map[string]string) []DiffEntry {
	old := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if ns := nsPerOp(b); ns > 0 {
			old[diffKey(b)] = ns
		}
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	var out []DiffEntry
	for _, b := range cur.Benchmarks {
		ns := nsPerOp(b)
		if ns <= 0 {
			continue
		}
		k := diffKey(b)
		if _, have := old[k]; !have {
			if target, ok := aliases[stripProcs(b.Name)]; ok {
				ak := target
				if b.Pkg != "" {
					ak = b.Pkg + " " + target
				}
				if _, have := old[ak]; have {
					k = ak
				}
			}
		}
		seen[k] = true
		out = append(out, DiffEntry{Name: b.Name, OldNs: old[k], NewNs: ns})
	}
	for _, b := range base.Benchmarks {
		k := diffKey(b)
		if ns := nsPerOp(b); ns > 0 && !seen[k] {
			out = append(out, DiffEntry{Name: b.Name, OldNs: ns})
		}
	}
	return out
}

// WriteDiff renders the comparison table.
func WriteDiff(w io.Writer, diffs []DiffEntry) {
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range diffs {
		switch {
		case !d.InBoth() && d.NewNs > 0:
			fmt.Fprintf(w, "%-60s %14s %14.1f %8s\n", d.Name, "-", d.NewNs, "new")
		case !d.InBoth():
			fmt.Fprintf(w, "%-60s %14.1f %14s %8s\n", d.Name, d.OldNs, "-", "gone")
		default:
			fmt.Fprintf(w, "%-60s %14.1f %14.1f %+7.1f%%\n", d.Name, d.OldNs, d.NewNs, d.DeltaPct())
		}
	}
}

// Parse reads `go test -bench` output and extracts the benchmark lines.
func Parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			if art.Env == nil {
				art.Env = map[string]string{}
			}
			art.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				b.Pkg = pkg
				art.Benchmarks = append(art.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// parseBenchLine parses "BenchmarkName-8  N  v1 u1  v2 u2 ...". Lines that
// do not follow the shape (e.g. a benchmark name echoed by -v) report false.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}
