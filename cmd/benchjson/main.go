// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artefact, so CI can upload one BENCH_<sha>.json per commit and
// the repository's performance trajectory (sim hot path ns/op, allocs,
// figure metrics) stays machine-diffable across the whole history.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_abc123.json
//	benchjson -in bench.txt -out bench.json
//
// Non-benchmark lines (PASS, ok, build noise) are ignored; goos/goarch/pkg/
// cpu headers are captured into the artefact's environment block.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Metric is one "value unit" pair of a benchmark line (ns/op, B/op,
// allocs/op, or a custom ReportMetric unit).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkFig8Delay/urban/ROBC-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (the most recent "pkg:"
	// header), so concatenated multi-package bench output stays
	// attributable.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// Metrics holds every reported value in line order.
	Metrics []Metric `json:"metrics"`
}

// Artifact is the JSON document benchjson emits.
type Artifact struct {
	// Env captures the goos/goarch/cpu header lines (machine-wide, so
	// identical across the concatenated packages; per-package context
	// lives in each Benchmark.Pkg).
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks holds every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "JSON artefact path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional arguments %q", fs.Args())
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	art, err := Parse(r)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// Parse reads `go test -bench` output and extracts the benchmark lines.
func Parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			if art.Env == nil {
				art.Env = map[string]string{}
			}
			art.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				b.Pkg = pkg
				art.Benchmarks = append(art.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// parseBenchLine parses "BenchmarkName-8  N  v1 u1  v2 u2 ...". Lines that
// do not follow the shape (e.g. a benchmark name echoed by -v) report false.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}
