// Command mlorasim runs one MLoRa-SS simulation scenario and prints its
// report: delivery, delay, hops, overhead and channel statistics.
//
// Usage:
//
//	mlorasim -scheme robc -env rural -gateways 20 -duration 24h -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mlorass"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mlorasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mlorasim", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "norouting", "forwarding scheme: norouting | rcaetx | robc")
		envName    = fs.String("env", "urban", "environment: urban (0.5 km d2d) | rural (1 km d2d)")
		gateways   = fs.Int("gateways", 0, "gateway count in the scaled world (default from config)")
		duration   = fs.Duration("duration", 0, "simulated horizon (default 24h)")
		seed       = fs.Uint64("seed", 1, "random seed")
		classQA    = fs.Bool("queue-class-a", false, "use Queue-based Class-A instead of Modified Class-C")
		quick      = fs.Bool("quick", false, "use the reduced-scale quick scenario")
		alpha      = fs.Float64("alpha", 0, "RCA-ETX EWMA weight (default 0.5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := mlorass.DefaultConfig()
	if *quick {
		cfg = mlorass.QuickConfig()
	}
	cfg.Seed = *seed
	switch strings.ToLower(*schemeName) {
	case "norouting", "lorawan":
		cfg.Scheme = mlorass.SchemeNoRouting
	case "rcaetx", "rca-etx":
		cfg.Scheme = mlorass.SchemeRCAETX
	case "robc":
		cfg.Scheme = mlorass.SchemeROBC
	default:
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	switch strings.ToLower(*envName) {
	case "urban":
		cfg.Environment = mlorass.Urban
	case "rural":
		cfg.Environment = mlorass.Rural
	default:
		return fmt.Errorf("unknown environment %q", *envName)
	}
	if *gateways > 0 {
		cfg.NumGateways = *gateways
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *classQA {
		cfg.Class = mlorass.ClassQueueA
	}
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	start := time.Now()
	res, err := mlorass.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	fmt.Printf("  (wall time %s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
