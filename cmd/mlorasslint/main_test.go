package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the driver with stdout/stderr redirected to temp files and
// returns the exit code plus both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, read(outF), read(errF)
}

func TestRunNoArgsUsage(t *testing.T) {
	code, _, stderr := capture(t, nil)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") || !strings.Contains(stderr, "detlint") {
		t.Fatalf("usage text missing analyzers:\n%s", stderr)
	}
}

func TestRunCleanPackage(t *testing.T) {
	code, stdout, stderr := capture(t, []string{"./../../internal/lorawan"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean package produced output:\n%s", stdout)
	}
}

func TestRunOutsideModule(t *testing.T) {
	code, _, stderr := capture(t, []string{"../../../elsewhere"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "outside module") {
		t.Fatalf("stderr = %q, want outside-module error", stderr)
	}
}

// TestRunFailsOnViolation is the CI contract: introducing a determinism
// violation into a simulation package makes the driver exit 1 and name the
// finding. The violating module is synthesised in a temp dir so the real
// tree stays clean.
func TestRunFailsOnViolation(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "eventsim")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package eventsim

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
	code, stdout, stderr := capture(t, []string{"./..."})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "detlint") || !strings.Contains(stdout, "time.Now") {
		t.Fatalf("finding not reported:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Fatalf("summary missing:\n%s", stderr)
	}
}
