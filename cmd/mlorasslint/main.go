// Command mlorasslint runs the repo's static-analysis suite (internal/
// analysis) over the module: detlint (simulation determinism), hotpathlint
// (zero-alloc //mlorass:hotpath functions) and unitlint (radio-unit safety).
//
// Usage:
//
//	go run ./cmd/mlorasslint ./...
//	go run ./cmd/mlorasslint ./internal/radio ./internal/mac
//
// Findings print as file:line:col: analyzer: message, one per line, sorted by
// position. The exit status is 0 when the tree is clean, 1 when findings
// remain, 2 on usage or load errors. Suppress an individual finding in source
// with "//lint:ignore <analyzer> <reason>" on the same line or the line
// above; the reason is mandatory, and a stale directive is itself a finding.
//
// The linter is stdlib-only (go/parser + go/types + the source importer) and
// runs offline: it needs the Go toolchain's GOROOT sources and nothing else.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mlorass/internal/analysis"
)

// Analyzers is the suite the driver runs, in output order.
var Analyzers = []*analysis.Analyzer{
	analysis.DetLint,
	analysis.HotPathLint,
	analysis.UnitLint,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mlorasslint:", err)
		return 2
	}
	module, root, err := analysis.ModuleInfo(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "mlorasslint:", err)
		return 2
	}
	loader := analysis.NewLoader(module, root)

	var pkgs []*analysis.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == module+"/...":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(stderr, "mlorasslint:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		default:
			path, err := resolveArg(module, root, cwd, arg)
			if err != nil {
				fmt.Fprintln(stderr, "mlorasslint:", err)
				return 2
			}
			pkg, err := loader.Load(path)
			if err != nil {
				fmt.Fprintln(stderr, "mlorasslint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := 0
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		diags, err := analysis.RunAnalyzers(pkg, Analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "mlorasslint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "mlorasslint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// resolveArg turns a command-line package argument — an import path or a
// (relative) directory — into a module import path.
func resolveArg(module, root, cwd, arg string) (string, error) {
	if arg == module || strings.HasPrefix(arg, module+"/") {
		return arg, nil
	}
	dir := arg
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %q is outside module %s", arg, module)
	}
	if rel == "." {
		return module, nil
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

func usage(w *os.File) {
	fmt.Fprintln(w, "usage: mlorasslint <packages>   (e.g. mlorasslint ./...)")
	fmt.Fprintln(w, "analyzers:")
	for _, a := range Analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}
