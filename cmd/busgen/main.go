// Command busgen generates the synthetic TFL-like bus dataset, prints its
// Fig. 7 statistics, and optionally writes it as CSV for inspection or
// reuse.
//
// Usage:
//
//	busgen -routes 45 -headway 6m -seed 1 -out dataset.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlorass"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "busgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("busgen", flag.ContinueOnError)
	var (
		routes  = fs.Int("routes", 45, "number of bus routes")
		headway = fs.Duration("headway", 6*time.Minute, "peak departure interval per route and direction")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("out", "", "write the dataset as CSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := mlorass.GenerateDataset(*seed, *routes, *headway)
	if err != nil {
		return err
	}

	fmt.Printf("dataset: %d routes, %d vehicle shifts over %.0f km²\n",
		len(ds.Routes), len(ds.Trips), ds.Area.Area()/1e6)

	active := ds.ActiveBuses(time.Hour)
	peak := 0
	for _, n := range active {
		if n > peak {
			peak = n
		}
	}
	fmt.Println("\nFig 7a: active buses per hour")
	for h, n := range active {
		fmt.Printf("  %02d:00 %5d %s\n", h, n, bar(n, peak))
	}

	durations := ds.TripDurations()
	bins := make([]int, 10) // hourly bins to 10 h
	maxBin := 0
	for _, d := range durations {
		i := int(d / time.Hour)
		if i >= len(bins) {
			i = len(bins) - 1
		}
		bins[i]++
		if bins[i] > maxBin {
			maxBin = bins[i]
		}
	}
	fmt.Println("\nFig 7b: shift-duration distribution (1 h bins)")
	for i, c := range bins {
		fmt.Printf("  %2d-%2dh %5d %s\n", i, i+1, c, bar(c, maxBin))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mlorass.EncodeDataset(f, ds); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	return nil
}

func bar(v, max int) string {
	if max <= 0 {
		return ""
	}
	n := v * 40 / max
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
