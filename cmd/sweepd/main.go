// Command sweepd runs the figure sweeps (figs 8/9/12/13) through the
// crash-tolerant sweep farm: cells are handed to workers under expiring
// leases, artefacts flow through the run store's atomic-write path, failed
// or lost attempts are retried with exponential backoff, and cells that fail
// every attempt are quarantined and reported as explicit gaps — the sweep
// always terminates, and nothing is ever silently zeroed.
//
// sweepd's stdout is byte-identical to expsweep's for the same flags: both
// enumerate the same cell grid, derive the same store keys, and print
// through the same table renderer. The farm adds what expsweep's in-process
// pool cannot: worker crashes, lost messages and torn writes do not lose the
// sweep (see README "Sweep farm").
//
// Usage:
//
//	sweepd -fig 8 -quick -workers 4                  # in-process farm
//	sweepd -fig 8 -reps 5 -store .runcache           # resumable: re-run after a crash
//	sweepd -fig 8 -quick -listen :9109 -progress     # live lease/retry dashboard
//	sweepd -fig 8 -lease-ttl 10s -attempts 6         # lease tuning
//
// With -store, a killed sweepd (or a crashed machine) loses nothing: the
// next invocation recovers every persisted cell from the store and computes
// only the remainder. Without -store, artefacts travel inline and a restart
// recomputes from scratch — the single-machine degradation mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mlorass/internal/experiment"
	"mlorass/internal/obs"
	"mlorass/internal/runstore"
	"mlorass/internal/sweepfarm"
	"mlorass/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "8", "figure sweep to run: 8 | 9 | 12 | 13 (all four print the same table block)")
		envName     = fs.String("env", "both", "environment: urban | rural | both")
		seed        = fs.Uint64("seed", 1, "random seed (replications derive theirs from it)")
		quick       = fs.Bool("quick", false, "reduced scale (shorter horizon, smaller fleet)")
		quiet       = fs.Bool("quiet", false, "suppress per-cell progress lines")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "farm worker count")
		reps        = fs.Int("reps", 1, "replications per sweep cell; tables report mean ± 95% CI")
		storeDir    = fs.String("store", "", "run-artifact store directory: the farm's durable state — cells already stored are recovered instead of re-simulated, and a killed sweep resumes from here")
		percentiles = fs.Bool("percentiles", false, "also print pooled p50/p95/p99 delay columns")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "cell lease lifetime between heartbeats; an expired lease re-queues its cell")
		attempts    = fs.Int("attempts", 4, "failed attempts (errors, corrupt artefacts, expired leases) before a cell is quarantined")
		backoff     = fs.Duration("backoff", 250*time.Millisecond, "base of the exponential retry backoff")
		inflight    = fs.Int("inflight", 2, "max cells in flight per worker (lease cap and compute concurrency)")
		listen      = fs.String("listen", "", "serve live observability on this address while the sweep runs: dashboard with per-worker lease/retry/quarantine tiles, /metrics, /spans, /debug/pprof/*")
		progress    = fs.Bool("progress", false, "render the sweep as one live status line on stderr instead of per-cell lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional arguments %q (all options are flags)", fs.Args())
	}
	switch *fig {
	case "8", "9", "12", "13":
	default:
		return fmt.Errorf("unknown figure %q (sweepd runs the figure sweeps: 8 | 9 | 12 | 13)", *fig)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be at least 1", *workers)
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}
	if *attempts < 1 {
		return fmt.Errorf("-attempts %d must be at least 1", *attempts)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight %d must be at least 1", *inflight)
	}
	if *progress && *quiet {
		return fmt.Errorf("-progress and -quiet are contradictory: one asks for a live status line, the other for silence")
	}

	base := experiment.DefaultConfig()
	if *quick {
		base = experiment.QuickConfig()
	}
	base.Seed = *seed

	envs, err := parseEnvs(*envName)
	if err != nil {
		return err
	}

	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir)
		if err != nil {
			return err
		}
	}

	tracker := obs.NewSweepTracker()
	if *listen != "" {
		srv := &obs.Server{Registry: obs.NewRegistry(), Flight: obs.NewFlightRecorder(0),
			Sweep: tracker, Title: "sweepd -fig " + *fig}
		url, stopSrv, serr := srv.Start(*listen)
		if serr != nil {
			return serr
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "sweepd: observability at %s/ (metrics, spans, pprof)\n", url)
	}

	for _, env := range envs {
		if err := sweepEnv(base, env, store, tracker, sweepOpts{
			fig: *fig, workers: *workers, reps: *reps,
			quiet: *quiet, progress: *progress, percentiles: *percentiles,
			lease: sweepfarm.LeaseConfig{
				TTL:          *leaseTTL,
				MaxAttempts:  *attempts,
				BackoffBase:  *backoff,
				MaxPerWorker: *inflight,
				Seed:         base.Seed,
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

type sweepOpts struct {
	fig         string
	workers     int
	reps        int
	quiet       bool
	progress    bool
	percentiles bool
	lease       sweepfarm.LeaseConfig
}

// sweepEnv runs one environment's figure grid through the farm and prints
// the table block (and, when cells were lost to quarantine, the gap report).
func sweepEnv(base experiment.Config, env experiment.Environment, store *runstore.Store,
	tracker *obs.SweepTracker, o sweepOpts) error {

	var before runstore.Stats
	if store != nil {
		before = store.Stats()
	}
	tracker.Begin(fmt.Sprintf("fig %s %s", o.fig, env), o.workers)

	fsweep := experiment.NewFarmSweep(base, env, o.reps)
	cells := fsweep.Cells()
	var artifacts sweepfarm.ArtifactStore
	if store != nil {
		artifacts = store
	} else {
		// No durable store: artefacts travel inline in completion messages.
		for i := range cells {
			cells[i].Key = ""
		}
	}

	// The coordinator emits events (and runs Absorb) under its lock, so the
	// handler below is single-threaded: lastSnap set by OnResult is consumed
	// by the Done event that immediately follows the same absorption.
	var lastSnap telemetry.Snapshot
	recovered := 0
	fsweep.OnResult = func(res *experiment.Result) { lastSnap = res.Telemetry }
	events := func(e sweepfarm.Event) {
		switch e.Kind {
		case sweepfarm.EventLeased:
			tracker.FarmLeased(e.Worker)
		case sweepfarm.EventDone:
			tracker.FarmSettled(e.Worker)
			tracker.CellDone(e.Done, e.Total, e.Cached, lastSnap)
			lastSnap = telemetry.Snapshot{}
			if e.Cached {
				recovered++
			}
		case sweepfarm.EventDuplicate:
			tracker.FarmSettled(e.Worker)
			tracker.FarmDuplicate()
		case sweepfarm.EventRetry:
			tracker.FarmSettled(e.Worker)
			tracker.FarmRetry(e.Expired)
		case sweepfarm.EventQuarantined:
			tracker.FarmSettled(e.Worker)
			tracker.FarmQuarantined()
		}
		switch {
		case o.progress:
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s", tracker.Status().Line())
		case o.quiet:
		case e.Kind == sweepfarm.EventDone:
			from := ""
			if e.Cached {
				from = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %s%s (%s)\n", e.Done, e.Total, e.Cell.Label, from, workerName(e.Worker))
		case e.Kind == sweepfarm.EventRetry:
			fmt.Fprintf(os.Stderr, "  retry %s attempt %d (%s): %s\n", e.Cell.Label, e.Attempt, workerName(e.Worker), e.Err)
		case e.Kind == sweepfarm.EventQuarantined:
			fmt.Fprintf(os.Stderr, "  QUARANTINED %s after %d attempts: %s\n", e.Cell.Label, e.Attempt, e.Err)
		}
	}

	farm, err := sweepfarm.New(cells, fsweep.Run, artifacts, nil, sweepfarm.FarmConfig{
		Workers: o.workers,
		Worker:  sweepfarm.WorkerConfig{Concurrency: o.lease.MaxPerWorker},
		Lease:   o.lease,
		Verify:  fsweep.Verify,
		Absorb:  fsweep.Absorb,
		Events:  events,
	})
	if err != nil {
		return err
	}
	rep, err := farm.Run()
	for i := 0; i < rep.Crashes; i++ {
		tracker.FarmCrash()
	}
	tracker.Finish()
	if o.progress {
		fmt.Fprintln(os.Stderr) // seal the status line
	}
	if err != nil {
		return err
	}
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "sweepd: store %s: %d recovered, %d simulated and persisted\n",
			store.Dir(), recovered, st.Puts-before.Puts)
	}
	experiment.RenderFigureTables(os.Stdout, fsweep.Points(), o.reps, o.percentiles)
	if gaps := rep.Gaps(); gaps != "" {
		// The explicit gap contract: a sweep missing cells says so on
		// stdout, right under the tables it could not fill.
		fmt.Print(gaps)
	}
	return nil
}

func workerName(w string) string {
	if w == "" {
		return "store"
	}
	return w
}

func parseEnvs(name string) ([]experiment.Environment, error) {
	switch name {
	case "urban":
		return []experiment.Environment{experiment.Urban}, nil
	case "rural":
		return []experiment.Environment{experiment.Rural}, nil
	case "both":
		return []experiment.Environment{experiment.Urban, experiment.Rural}, nil
	default:
		return nil, fmt.Errorf("unknown environment %q", name)
	}
}
