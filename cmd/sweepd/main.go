// Command sweepd runs the figure sweeps (figs 8/9/12/13) through the
// crash-tolerant sweep farm: cells are handed to workers under expiring
// leases, artefacts flow through the run store's atomic-write path, failed
// or lost attempts are retried with exponential backoff, and cells that fail
// every attempt are quarantined and reported as explicit gaps — the sweep
// always terminates, and nothing is ever silently zeroed.
//
// sweepd's stdout is byte-identical to expsweep's for the same flags: both
// enumerate the same cell grid, derive the same store keys, and print
// through the same table renderer. The farm adds what expsweep's in-process
// pool cannot: worker crashes, lost messages and torn writes do not lose the
// sweep (see README "Sweep farm").
//
// Usage:
//
//	sweepd -fig 8 -quick -workers 4                  # in-process farm
//	sweepd -fig 8 -reps 5 -store .runcache           # resumable: re-run after a crash
//	sweepd -fig 8 -quick -listen :9109 -progress     # live lease/retry dashboard
//	sweepd -fig 8 -lease-ttl 10s -attempts 6         # lease tuning
//
// The same binary is both halves of a multi-process farm (see README
// "Sweep farm" for the wire mode):
//
//	sweepd -fig 8 -env urban -store /shared/cache -serve :7600     # coordinator
//	sweepd -fig 8 -env urban -store /shared/cache -connect host:7600  # worker (any number)
//
// -serve owns the sweep: it leases cells to remote workers over TCP, merges
// exactly once, and prints the same tables the in-process mode prints.
// -connect is a disposable worker process: kill -9 it mid-sweep and its
// leases expire and re-run elsewhere; start another and it just joins. Both
// sides must be given the same figure/env/scale/seed/reps flags (the worker
// refuses cells whose identity does not match its locally derived grid) and,
// when -store is used, a shared store directory.
//
// With -store, a killed sweepd (or a crashed machine) loses nothing: the
// next invocation recovers every persisted cell from the store and computes
// only the remainder. Without -store, artefacts travel inline and a restart
// recomputes from scratch — the single-machine degradation mode.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"mlorass/internal/experiment"
	"mlorass/internal/obs"
	"mlorass/internal/runstore"
	"mlorass/internal/sweepfarm"
	"mlorass/internal/sweepfarm/wire"
	"mlorass/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "8", "figure sweep to run: 8 | 9 | 12 | 13 (all four print the same table block)")
		envName     = fs.String("env", "both", "environment: urban | rural | both")
		seed        = fs.Uint64("seed", 1, "random seed (replications derive theirs from it)")
		quick       = fs.Bool("quick", false, "reduced scale (shorter horizon, smaller fleet)")
		quiet       = fs.Bool("quiet", false, "suppress per-cell progress lines")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "farm worker count")
		reps        = fs.Int("reps", 1, "replications per sweep cell; tables report mean ± 95% CI")
		storeDir    = fs.String("store", "", "run-artifact store directory: the farm's durable state — cells already stored are recovered instead of re-simulated, and a killed sweep resumes from here")
		percentiles = fs.Bool("percentiles", false, "also print pooled p50/p95/p99 delay columns")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "cell lease lifetime between heartbeats; an expired lease re-queues its cell")
		attempts    = fs.Int("attempts", 4, "failed attempts (errors, corrupt artefacts, expired leases) before a cell is quarantined")
		backoff     = fs.Duration("backoff", 250*time.Millisecond, "base of the exponential retry backoff")
		inflight    = fs.Int("inflight", 2, "max cells in flight per worker (lease cap and compute concurrency)")
		listen      = fs.String("listen", "", "serve live observability on this address while the sweep runs: dashboard with per-worker lease/retry/quarantine tiles, /metrics, /spans, /debug/pprof/*")
		progress    = fs.Bool("progress", false, "render the sweep as one live status line on stderr instead of per-cell lines")
		serve       = fs.String("serve", "", "run as the coordinator half of a multi-process farm: lease cells to remote sweepd -connect workers on this address instead of running local workers (requires a single -env)")
		connect     = fs.String("connect", "", "run as a worker process against a sweepd -serve coordinator at this address; computes cells until the coordinator reports the sweep done (requires the same figure/env/scale/seed/reps flags as the coordinator)")
		workerID    = fs.String("id", "", "worker name in leases and events for -connect (default: hostname-pid)")
		giveUp      = fs.Duration("giveup", time.Minute, "with -connect: exit with an error after this long without one successful coordinator call (the supervision signal that the coordinator is gone)")
		drain       = fs.Duration("drain", 2*time.Second, "with -serve: keep answering workers for this long after the sweep completes, so connected workers learn it is done and exit cleanly")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional arguments %q (all options are flags)", fs.Args())
	}
	switch *fig {
	case "8", "9", "12", "13":
	default:
		return fmt.Errorf("unknown figure %q (sweepd runs the figure sweeps: 8 | 9 | 12 | 13)", *fig)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers %d must be at least 1", *workers)
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}
	if *attempts < 1 {
		return fmt.Errorf("-attempts %d must be at least 1", *attempts)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight %d must be at least 1", *inflight)
	}
	if *progress && *quiet {
		return fmt.Errorf("-progress and -quiet are contradictory: one asks for a live status line, the other for silence")
	}
	if *serve != "" && *connect != "" {
		return fmt.Errorf("-serve and -connect are exclusive: a process is the coordinator or a worker, not both")
	}
	if *serve != "" || *connect != "" {
		// Cell indexes restart per environment, so a remote worker cannot
		// tell which environment's grid a lease belongs to; the wire mode
		// pins one per process.
		if *envName != "urban" && *envName != "rural" {
			return fmt.Errorf("-serve/-connect need a single environment (-env urban or -env rural); %q is ambiguous over the wire", *envName)
		}
	}
	if *connect != "" {
		if *listen != "" {
			return fmt.Errorf("-connect is a worker process; -listen (observability) belongs on the -serve side, which sees every worker's events")
		}
		if *progress {
			return fmt.Errorf("-connect is a worker process; -progress belongs on the -serve side, which tracks the whole sweep")
		}
	}

	base := experiment.DefaultConfig()
	if *quick {
		base = experiment.QuickConfig()
	}
	base.Seed = *seed

	envs, err := parseEnvs(*envName)
	if err != nil {
		return err
	}

	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir)
		if err != nil {
			return err
		}
	}

	tracker := obs.NewSweepTracker()
	if *listen != "" {
		srv := &obs.Server{Registry: obs.NewRegistry(), Flight: obs.NewFlightRecorder(0),
			Sweep: tracker, Title: "sweepd -fig " + *fig}
		url, stopSrv, serr := srv.Start(*listen)
		if serr != nil {
			return serr
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "sweepd: observability at %s/ (metrics, spans, pprof)\n", url)
	}

	opts := sweepOpts{
		fig: *fig, workers: *workers, reps: *reps,
		quiet: *quiet, progress: *progress, percentiles: *percentiles,
		lease: sweepfarm.LeaseConfig{
			TTL:          *leaseTTL,
			MaxAttempts:  *attempts,
			BackoffBase:  *backoff,
			MaxPerWorker: *inflight,
			Seed:         base.Seed,
		},
	}
	switch {
	case *connect != "":
		id := *workerID
		if id == "" {
			id = defaultWorkerID()
		}
		return connectSweep(*connect, base, envs[0], store, opts, id, *giveUp)
	case *serve != "":
		return serveSweep(*serve, base, envs[0], store, tracker, opts, *drain)
	default:
		for _, env := range envs {
			if err := sweepEnv(base, env, store, tracker, opts); err != nil {
				return err
			}
		}
		return nil
	}
}

// defaultWorkerID names a -connect worker after its host and pid, so two
// workers on one machine (or twenty across a cluster) never collide.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

type sweepOpts struct {
	fig         string
	workers     int
	reps        int
	quiet       bool
	progress    bool
	percentiles bool
	lease       sweepfarm.LeaseConfig
}

// envRun is one environment's prepared sweep: the grid, the (optional)
// store, and the event handler feeding tracker + stderr. Both execution
// modes — in-process farm and wire-served coordinator — run the same
// preparation and the same rendering, which is what keeps their stdout
// byte-identical.
type envRun struct {
	fsweep    *experiment.FarmSweep
	cells     []sweepfarm.Cell
	artifacts sweepfarm.ArtifactStore
	events    func(sweepfarm.Event)
	recovered *int
	before    runstore.Stats
	store     *runstore.Store
	tracker   *obs.SweepTracker
	o         sweepOpts
	// remote means the compute ran in -connect worker processes, whose
	// store writes this process cannot count.
	remote bool
}

// prepareEnv builds one environment's cells, event wiring and telemetry
// plumbing. workers is the tracker's announced pool size (0 when the pool
// is remote and unknown).
func prepareEnv(base experiment.Config, env experiment.Environment, store *runstore.Store,
	tracker *obs.SweepTracker, o sweepOpts, workers int) *envRun {

	r := &envRun{store: store, tracker: tracker, o: o, recovered: new(int)}
	if store != nil {
		r.before = store.Stats()
	}
	tracker.Begin(fmt.Sprintf("fig %s %s", o.fig, env), workers)

	r.fsweep = experiment.NewFarmSweep(base, env, o.reps)
	r.cells = r.fsweep.Cells()
	if store != nil {
		r.artifacts = store
	} else {
		// No durable store: artefacts travel inline in completion messages.
		for i := range r.cells {
			r.cells[i].Key = ""
		}
	}

	// The coordinator emits events (and runs Absorb) under its lock, so the
	// handler below is single-threaded: lastSnap set by OnResult is consumed
	// by the Done event that immediately follows the same absorption.
	var lastSnap telemetry.Snapshot
	r.fsweep.OnResult = func(res *experiment.Result) { lastSnap = res.Telemetry }
	r.events = func(e sweepfarm.Event) {
		switch e.Kind {
		case sweepfarm.EventLeased:
			tracker.FarmLeased(e.Worker)
		case sweepfarm.EventDone:
			tracker.FarmSettled(e.Worker)
			tracker.CellDone(e.Done, e.Total, e.Cached, lastSnap)
			lastSnap = telemetry.Snapshot{}
			if e.Cached {
				*r.recovered++
			}
		case sweepfarm.EventDuplicate:
			tracker.FarmSettled(e.Worker)
			tracker.FarmDuplicate()
		case sweepfarm.EventRetry:
			tracker.FarmSettled(e.Worker)
			tracker.FarmRetry(e.Expired)
		case sweepfarm.EventQuarantined:
			tracker.FarmSettled(e.Worker)
			tracker.FarmQuarantined()
		}
		switch {
		case o.progress:
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s", tracker.Status().Line())
		case o.quiet:
		case e.Kind == sweepfarm.EventDone:
			from := ""
			if e.Cached {
				from = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %s%s (%s)\n", e.Done, e.Total, e.Cell.Label, from, workerName(e.Worker))
		case e.Kind == sweepfarm.EventRetry:
			fmt.Fprintf(os.Stderr, "  retry %s attempt %d (%s): %s\n", e.Cell.Label, e.Attempt, workerName(e.Worker), e.Err)
		case e.Kind == sweepfarm.EventQuarantined:
			fmt.Fprintf(os.Stderr, "  QUARANTINED %s after %d attempts: %s\n", e.Cell.Label, e.Attempt, e.Err)
		}
	}
	return r
}

// finish renders the sweep's outcome: tracker teardown, the store recovery
// line, the figure tables and the gap report.
func (r *envRun) finish(rep sweepfarm.Report, runErr error) error {
	for i := 0; i < rep.Crashes; i++ {
		r.tracker.FarmCrash()
	}
	r.tracker.Finish()
	if r.o.progress {
		fmt.Fprintln(os.Stderr) // seal the status line
	}
	if runErr != nil {
		return runErr
	}
	switch {
	case r.store != nil && r.remote:
		// Remote workers persist into the shared store from their own
		// processes; this side only sees what it recovered vs merged.
		fmt.Fprintf(os.Stderr, "sweepd: store %s: %d recovered, %d computed by remote workers\n",
			r.store.Dir(), *r.recovered, rep.Done-*r.recovered)
	case r.store != nil:
		st := r.store.Stats()
		fmt.Fprintf(os.Stderr, "sweepd: store %s: %d recovered, %d simulated and persisted\n",
			r.store.Dir(), *r.recovered, st.Puts-r.before.Puts)
	}
	experiment.RenderFigureTables(os.Stdout, r.fsweep.Points(), r.o.reps, r.o.percentiles)
	if gaps := rep.Gaps(); gaps != "" {
		// The explicit gap contract: a sweep missing cells says so on
		// stdout, right under the tables it could not fill.
		fmt.Print(gaps)
	}
	return nil
}

// sweepEnv runs one environment's figure grid through the in-process farm
// and prints the table block (and, when cells were lost to quarantine, the
// gap report).
func sweepEnv(base experiment.Config, env experiment.Environment, store *runstore.Store,
	tracker *obs.SweepTracker, o sweepOpts) error {

	r := prepareEnv(base, env, store, tracker, o, o.workers)
	farm, err := sweepfarm.New(r.cells, r.fsweep.Run, r.artifacts, nil, sweepfarm.FarmConfig{
		Workers: o.workers,
		Worker:  sweepfarm.WorkerConfig{Concurrency: o.lease.MaxPerWorker},
		Lease:   o.lease,
		Verify:  r.fsweep.Verify,
		Absorb:  r.fsweep.Absorb,
		Events:  r.events,
	})
	if err != nil {
		return err
	}
	rep, err := farm.Run()
	return r.finish(rep, err)
}

// serveSweep runs one environment's grid as the coordinator half of a
// multi-process farm: cells are leased to remote sweepd -connect workers
// over TCP, and the tables print here once every cell is done or
// quarantined. After the sweep completes the server keeps answering for the
// drain window so connected workers hear "done" and exit cleanly, instead
// of dying with ErrLost against a vanished coordinator.
func serveSweep(addr string, base experiment.Config, env experiment.Environment,
	store *runstore.Store, tracker *obs.SweepTracker, o sweepOpts, drain time.Duration) error {

	r := prepareEnv(base, env, store, tracker, o, 0)
	r.remote = true
	coord, err := sweepfarm.NewCoordinator(r.cells, r.artifacts, nil, sweepfarm.CoordConfig{
		Lease:  o.lease,
		Verify: r.fsweep.Verify,
		Absorb: r.fsweep.Absorb,
		Events: r.events,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := wire.NewServer(coord, wire.ServerConfig{
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...) },
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sweepd: coordinating fig %s %s on %s (%d cells; workers join with -connect)\n",
		o.fig, env, ln.Addr(), len(r.cells))

	<-coord.DoneCh()
	time.Sleep(drain)
	srv.Close()
	if err := <-serveErr; err != nil {
		return r.finish(coord.Report(), err)
	}
	return r.finish(coord.Report(), nil)
}

// connectSweep runs one worker process against a sweepd -serve coordinator.
// The worker derives the same cell grid from its own flags and refuses any
// leased cell whose identity (key, label) does not match — the loud failure
// mode for a figure/env/scale/seed mismatch between the two processes. It
// exits 0 once the coordinator reports the sweep done, and with an error if
// the coordinator stays unreachable for the give-up window.
func connectSweep(addr string, base experiment.Config, env experiment.Environment,
	store *runstore.Store, o sweepOpts, id string, giveUp time.Duration) error {

	fsweep := experiment.NewFarmSweep(base, env, o.reps)
	local := fsweep.Cells()
	var artifacts sweepfarm.ArtifactStore
	if store != nil {
		artifacts = store
	} else {
		for i := range local {
			local[i].Key = ""
		}
	}
	run := func(c sweepfarm.Cell) ([]byte, error) {
		if c.Index < 0 || c.Index >= len(local) {
			return nil, fmt.Errorf("leased cell index %d is outside this worker's %d-cell grid — figure/env/scale flags disagree with the coordinator", c.Index, len(local))
		}
		if lc := local[c.Index]; lc.Key != c.Key || lc.Label != c.Label {
			return nil, fmt.Errorf("leased cell %d is %q (key %.12s) but this worker derives %q (key %.12s) — seed/reps/store flags disagree with the coordinator",
				c.Index, c.Label, c.Key, lc.Label, lc.Key)
		}
		return fsweep.Run(c)
	}
	client := wire.NewClient(wire.ClientConfig{Addr: addr})
	defer client.Close()
	w := sweepfarm.NewWorker(sweepfarm.WorkerConfig{
		ID:          id,
		Concurrency: o.lease.MaxPerWorker,
		GiveUp:      giveUp,
	}, client, artifacts, run, fsweep.Verify, nil, nil)
	fmt.Fprintf(os.Stderr, "sweepd: worker %s computing fig %s %s via %s\n", id, o.fig, env, addr)
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweepd: worker %s: sweep complete\n", id)
	return nil
}

func workerName(w string) string {
	if w == "" {
		return "store"
	}
	return w
}

func parseEnvs(name string) ([]experiment.Environment, error) {
	switch name {
	case "urban":
		return []experiment.Environment{experiment.Urban}, nil
	case "rural":
		return []experiment.Environment{experiment.Rural}, nil
	case "both":
		return []experiment.Environment{experiment.Urban, experiment.Rural}, nil
	default:
		return nil, fmt.Errorf("unknown environment %q", name)
	}
}
