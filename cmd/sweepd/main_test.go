package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// helperSep separates arguments inside SWEEPD_HELPER_ARGS; environment
// variables cannot carry NUL, and 0x1f never appears in sweepd flags.
const helperSep = "\x1f"

// TestMain doubles as a sweepd re-exec hook: when SWEEPD_HELPER_ARGS is set
// the test binary behaves exactly like the sweepd CLI with those arguments.
// The multi-process wire tests use this to spawn real coordinator and
// worker processes without needing a prebuilt binary.
func TestMain(m *testing.M) {
	if raw, ok := os.LookupEnv("SWEEPD_HELPER_ARGS"); ok {
		if err := run(strings.Split(raw, helperSep)); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// sweepdCmd builds a subprocess that re-executes this test binary as sweepd
// with the given CLI arguments. The context kills it on timeout.
func sweepdCmd(ctx context.Context, args ...string) *exec.Cmd {
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), "SWEEPD_HELPER_ARGS="+strings.Join(args, helperSep))
	return cmd
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "7"}, "unknown figure"},
		{[]string{"positional"}, "unexpected positional"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-reps", "0"}, "-reps"},
		{[]string{"-attempts", "0"}, "-attempts"},
		{[]string{"-inflight", "0"}, "-inflight"},
		{[]string{"-progress", "-quiet"}, "contradictory"},
		{[]string{"-env", "lunar"}, "unknown environment"},
		{[]string{"-serve", "x:1", "-connect", "y:1"}, "exclusive"},
		{[]string{"-serve", "x:1"}, "ambiguous over the wire"},
		{[]string{"-connect", "y:1"}, "ambiguous over the wire"},
		{[]string{"-connect", "y:1", "-env", "urban", "-listen", ":0"}, "-listen"},
		{[]string{"-connect", "y:1", "-env", "urban", "-progress"}, "-progress belongs"},
	} {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

func TestParseEnvs(t *testing.T) {
	if envs, err := parseEnvs("both"); err != nil || len(envs) != 2 {
		t.Fatalf("both: %v %v", envs, err)
	}
	if envs, err := parseEnvs("urban"); err != nil || len(envs) != 1 {
		t.Fatalf("urban: %v %v", envs, err)
	}
	if envs, err := parseEnvs("rural"); err != nil || len(envs) != 1 {
		t.Fatalf("rural: %v %v", envs, err)
	}
	if _, err := parseEnvs("mars"); err == nil {
		t.Fatal("mars: want error")
	}
}

func TestWorkerName(t *testing.T) {
	if workerName("") != "store" || workerName("w3") != "w3" {
		t.Fatal("workerName mapping broken")
	}
}

// captureRun executes run(args) in-process with stdout redirected, failing
// the test on any run error, and returns what was printed.
func captureRun(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	got := make(chan string)
	go func() {
		var buf strings.Builder
		io.Copy(&buf, r)
		got <- buf.String()
	}()
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out := <-got
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// TestRunQuickSweep drives the real farm end to end through the CLI entry
// point — a quick urban grid with a store, run twice so both the compute
// path and the recover-from-store path execute, and the tables must agree
// byte for byte. (The byte-identity claim against expsweep lives in CI,
// where both binaries exist.)
func TestRunQuickSweep(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-fig", "8", "-quick", "-env", "urban", "-seed", "1",
		"-workers", "4", "-quiet", "-store", filepath.Join(dir, "store")}

	first := captureRun(t, args)
	if !strings.Contains(first, "gw") {
		t.Fatalf("first run printed no tables:\n%s", first)
	}
	second := captureRun(t, args)
	if first != second {
		t.Fatal("resumed run's tables differ from the first run's")
	}
}

var serveAddrRe = regexp.MustCompile(` on (127\.0\.0\.1:\d+) \(`)

// startServe launches a sweepd -serve subprocess, waits for it to announce
// its listen address on stderr, and returns the address, the stdout buffer
// the tables will land in, and a channel of its remaining stderr lines
// (closed when the process's stderr reaches EOF).
func startServe(ctx context.Context, t *testing.T, args []string) (*exec.Cmd, string, *bytes.Buffer, <-chan string) {
	t.Helper()
	cmd := sweepdCmd(ctx, args...)
	var tables bytes.Buffer
	cmd.Stdout = &tables
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 1024)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				cmd.Wait()
				t.Fatal("coordinator exited before announcing its address")
			}
			if m := serveAddrRe.FindStringSubmatch(line); m != nil {
				return cmd, m[1], &tables, lines
			}
		case <-ctx.Done():
			t.Fatal("timed out waiting for the coordinator to announce its address")
		}
	}
}

// TestServeSurvivesWorkerKill is the multi-process supervision proof: a
// -serve coordinator and two -connect worker processes over loopback TCP,
// one worker SIGKILLed mid-sweep. The coordinator must finish the sweep on
// the surviving worker (expired leases re-queue the dead worker's cells)
// and print tables byte-identical to the in-process run. A second
// serve+worker round over the same store must then recover every cell.
func TestServeSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep is slow; skipped in -short")
	}
	base := []string{"-fig", "8", "-quick", "-env", "urban", "-seed", "1", "-reps", "1"}
	want := captureRun(t, append(append([]string{}, base...), "-workers", "4", "-quiet"))

	store := filepath.Join(t.TempDir(), "store")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Short lease TTL so the killed worker's in-flight cells re-queue
	// quickly instead of waiting out the default 30s.
	serveArgs := append(append([]string{}, base...),
		"-store", store, "-serve", "127.0.0.1:0", "-lease-ttl", "2s", "-drain", "2s")
	serve, addr, tables, lines := startServe(ctx, t, serveArgs)

	workerCmd := func(id string) *exec.Cmd {
		args := append(append([]string{}, base...),
			"-store", store, "-connect", addr, "-id", id, "-giveup", "30s")
		return sweepdCmd(ctx, args...)
	}
	victim := workerCmd("wa")
	victim.Stdout, victim.Stderr = io.Discard, io.Discard
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	defer victim.Wait() // reaps the SIGKILL; its error is the point
	survivor := workerCmd("wb")
	var survivorLog bytes.Buffer
	survivor.Stdout, survivor.Stderr = io.Discard, &survivorLog
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}

	// Watch the coordinator's per-cell lines; the first one attributed to
	// wa proves it is actively computing — kill it there, mid-sweep.
	killed := false
	var serveLog strings.Builder
	for line := range lines {
		serveLog.WriteString(line + "\n")
		if !killed && strings.Contains(line, "(wa)") {
			killed = true
			if err := victim.Process.Kill(); err != nil {
				t.Fatalf("killing worker wa: %v", err)
			}
		}
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("coordinator failed: %v\nstderr:\n%s", err, serveLog.String())
	}
	if !killed {
		t.Fatalf("never saw a cell completed by wa, so nothing was killed mid-sweep\nstderr:\n%s", serveLog.String())
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("surviving worker failed: %v\nstderr:\n%s", err, survivorLog.String())
	}
	if got := tables.String(); got != want {
		t.Errorf("tables after worker kill differ from the in-process run\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Store-resumed round: a fresh coordinator over the same store must
	// recover every cell and print the same tables again.
	resumeArgs := append(append([]string{}, base...),
		"-store", store, "-serve", "127.0.0.1:0", "-drain", "5s")
	serve2, addr2, tables2, lines2 := startServe(ctx, t, resumeArgs)
	w := sweepdCmd(ctx, append(append([]string{}, base...),
		"-store", store, "-connect", addr2, "-id", "wc", "-giveup", "30s")...)
	var wLog bytes.Buffer
	w.Stdout, w.Stderr = io.Discard, &wLog
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	var resumeLog strings.Builder
	for line := range lines2 {
		resumeLog.WriteString(line + "\n")
	}
	if err := serve2.Wait(); err != nil {
		t.Fatalf("resumed coordinator failed: %v\nstderr:\n%s", err, resumeLog.String())
	}
	if err := w.Wait(); err != nil {
		t.Fatalf("resume worker failed: %v\nstderr:\n%s", err, wLog.String())
	}
	if got := tables2.String(); got != want {
		t.Errorf("store-resumed tables differ from the in-process run\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(resumeLog.String(), "recovered") {
		t.Errorf("resumed coordinator never reported recovered cells\nstderr:\n%s", resumeLog.String())
	}
}
