package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "7"}, "unknown figure"},
		{[]string{"positional"}, "unexpected positional"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-reps", "0"}, "-reps"},
		{[]string{"-attempts", "0"}, "-attempts"},
		{[]string{"-inflight", "0"}, "-inflight"},
		{[]string{"-progress", "-quiet"}, "contradictory"},
		{[]string{"-env", "lunar"}, "unknown environment"},
	} {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

func TestParseEnvs(t *testing.T) {
	if envs, err := parseEnvs("both"); err != nil || len(envs) != 2 {
		t.Fatalf("both: %v %v", envs, err)
	}
	if envs, err := parseEnvs("urban"); err != nil || len(envs) != 1 {
		t.Fatalf("urban: %v %v", envs, err)
	}
	if envs, err := parseEnvs("rural"); err != nil || len(envs) != 1 {
		t.Fatalf("rural: %v %v", envs, err)
	}
	if _, err := parseEnvs("mars"); err == nil {
		t.Fatal("mars: want error")
	}
}

func TestWorkerName(t *testing.T) {
	if workerName("") != "store" || workerName("w3") != "w3" {
		t.Fatal("workerName mapping broken")
	}
}

// TestRunQuickSweep drives the real farm end to end through the CLI entry
// point — a quick urban grid with a store, run twice so both the compute
// path and the recover-from-store path execute, and the tables must agree
// byte for byte. (The byte-identity claim against expsweep lives in CI,
// where both binaries exist.)
func TestRunQuickSweep(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-fig", "8", "-quick", "-env", "urban", "-seed", "1",
		"-workers", "4", "-quiet", "-store", filepath.Join(dir, "store")}

	capture := func() string {
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		got := make(chan []byte)
		go func() {
			var buf strings.Builder
			b := make([]byte, 4096)
			for {
				n, err := r.Read(b)
				buf.Write(b[:n])
				if err != nil {
					break
				}
			}
			got <- []byte(buf.String())
		}()
		runErr := run(args)
		w.Close()
		os.Stdout = old
		out := <-got
		r.Close()
		if runErr != nil {
			t.Fatal(runErr)
		}
		return string(out)
	}

	first := capture()
	if !strings.Contains(first, "gw") {
		t.Fatalf("first run printed no tables:\n%s", first)
	}
	second := capture()
	if first != second {
		t.Fatal("resumed run's tables differ from the first run's")
	}
}
