// Command expsweep regenerates the paper's evaluation artefacts: the
// Fig. 8/9/12/13 gateway-density sweeps, the Fig. 10/11 throughput time
// series, the Fig. 7 dataset statistics, and the ablations (α sensitivity,
// Queue-based Class-A, random gateway placement).
//
// Sweeps fan out over a worker pool (-parallel, default GOMAXPROCS) and can
// replicate every cell across derived seeds (-reps), reporting each metric
// as mean ± 95% confidence interval instead of a one-seed point estimate.
//
// Beyond the paper's figures, the scenario engine adds -scenario (run any
// figure under random-waypoint or sensor-grid mobility instead of the bus
// timetable) and -fig resilience (the outage sweep: delivery ratio per
// scheme as a growing fraction of gateways goes down).
//
// The MAC subsystem adds -fig adr (the adaptive-data-rate sweep: the paper's
// fixed-SF7 baseline against SNR-margin ADR and ADR+confirmed traffic, per
// gateway density) and the -adr / -confirmed switches, which enable the MAC
// control plane under any other figure:
//
//	expsweep -fig adr -quick           # fixed-SF vs ADR vs ADR+confirmed
//	expsweep -fig 8 -quick -confirmed  # Fig 8 under confirmed traffic
//
// Usage:
//
//	expsweep -fig 8 -env urban         # one figure, one environment
//	expsweep -fig all                  # everything (long)
//	expsweep -fig 8 -quick             # reduced scale for a fast look
//	expsweep -fig 8 -parallel 8 -reps 5   # replicated parallel sweep
//	expsweep -fig 9 -scenario randomwaypoint   # non-timetabled mobility
//	expsweep -fig resilience -quick    # gateway-outage resilience table
//
// The telemetry subsystem adds -store (content-addressed run-artifact cache:
// repeated or interrupted sweeps skip already-computed cells), -trace
// (sampled per-packet JSONL/CSV event trace), and -percentiles (pooled
// p50/p95/p99 delay columns from exactly merged histograms):
//
//	expsweep -fig 8 -quick -reps 5 -store .runcache -percentiles
//	expsweep -fig 9 -quick -trace trace.jsonl -trace-sample 100
//
// The sharded event kernel adds -shards: every simulation in the sweep runs
// on N spatial tiles, one kernel goroutine per tile, with bit-identical
// results for every N ≥ 1 (see README "Sharded runs"):
//
//	expsweep -fig 8 -quick -shards 4   # intra-run parallelism, same bytes
//
// For performance work, -cpuprofile and -memprofile write pprof files on
// clean exit (see README "Performance"):
//
//	expsweep -fig 8 -quick -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof -top cpu.prof
//
// The observability layer adds -listen (serve a live HTML dashboard,
// /metrics Prometheus exposition, /spans flight-recorder dump, and
// /debug/pprof/* while the command runs), -progress (a single live status
// line for the figure sweeps), and -spans (dump the phase-span ring as
// JSONL on exit). See README "Observability":
//
//	expsweep -fig 8 -reps 5 -listen :9109    # watch at http://localhost:9109/
//	expsweep -fig 8 -quick -progress         # terminal status line
//	expsweep -fig 8 -quick -shards 4 -spans spans.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mlorass"
	"mlorass/internal/experiment"
	"mlorass/internal/gwplan"
	"mlorass/internal/obs"
	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "expsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("expsweep", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "8", "figure to regenerate: 7 | 8 | 9 | 10 | 11 | 12 | 13 | adr | resilience | ablations | all")
		envName     = fs.String("env", "both", "environment: urban | rural | both")
		seed        = fs.Uint64("seed", 1, "random seed (replications derive theirs from it)")
		quick       = fs.Bool("quick", false, "reduced scale (shorter horizon, smaller fleet)")
		quiet       = fs.Bool("quiet", false, "suppress per-run progress lines")
		parallel    = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for the figure sweeps (figs 8/9/12/13, resilience)")
		reps        = fs.Int("reps", 1, "replications per sweep cell (figs 8/9/12/13); tables report mean ± 95% CI")
		scenario    = fs.String("scenario", "buses", "mobility scenario: buses | randomwaypoint | sensorgrid")
		nodes       = fs.Int("nodes", 0, "node count for the randomwaypoint/sensorgrid scenarios (0 = default)")
		storeDir    = fs.String("store", "", "run-artifact store directory: figure-sweep cells already stored are loaded instead of re-simulated, fresh cells are persisted (resumable sweeps)")
		traceFile   = fs.String("trace", "", "write a sampled per-packet event trace to this file ('-' = stdout)")
		traceFormat = fs.String("trace-format", "jsonl", "trace encoding: jsonl | csv")
		traceSample = fs.Int("trace-sample", 1, "trace one in N messages (1 = every message; sampled messages trace completely)")
		percentiles = fs.Bool("percentiles", false, "also print pooled p50/p95/p99 delay columns for the figure sweeps")
		shards      = fs.Int("shards", 0, "run each simulation on the sharded event kernel with N spatial tiles (0 = classic serial engine; results are identical for every N >= 1)")
		adr         = fs.Bool("adr", false, "enable the network-server ADR loop (SNR-margin data-rate adaptation) for the run")
		confirmed   = fs.Bool("confirmed", false, "switch uplinks to confirmed traffic: downlink acks in RX1/RX2, retransmission backoff")
		cpuprofile  = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile  = fs.String("memprofile", "", "write a pprof heap profile to this file on clean exit")
		listen      = fs.String("listen", "", "serve live observability on this address (host:port) while the command runs: / is an HTML dashboard, /metrics a Prometheus exposition, /spans the flight-recorder dump, /debug/pprof/* profiling")
		progress    = fs.Bool("progress", false, "render the figure sweeps (figs 8/9/12/13) as one live status line on stderr instead of per-replication lines")
		spansFile   = fs.String("spans", "", "dump the recorded phase spans as JSONL to this file on exit ('-' = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected positional arguments %q (all options are flags)", fs.Args())
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel %d must be at least 1", *parallel)
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}
	if *nodes < 0 {
		return fmt.Errorf("-nodes %d must be non-negative (0 = scenario default)", *nodes)
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample %d must be at least 1 (1 traces every message)", *traceSample)
	}
	if *traceFormat != "jsonl" && *traceFormat != "csv" {
		return fmt.Errorf("unknown -trace-format %q (want jsonl | csv)", *traceFormat)
	}
	if *traceFile == "" && *traceSample != 1 {
		fmt.Fprintln(os.Stderr, "expsweep: note: -trace-sample has no effect without -trace")
	}
	switch *fig {
	case "8", "9", "12", "13":
	default:
		if *progress {
			return fmt.Errorf("-progress renders figure-sweep progress; -fig %s has no sweep cells (use figs 8/9/12/13)", *fig)
		}
	}
	if *progress && *quiet {
		return fmt.Errorf("-progress and -quiet are contradictory: one asks for a live status line, the other for silence")
	}
	if *spansFile != "" && *spansFile != "-" && *spansFile == *traceFile {
		return fmt.Errorf("-spans and -trace both point at %q; the JSONL streams would interleave", *spansFile)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("opening -cpuprofile file: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing -cpuprofile file: %w", cerr)
			}
		}()
	}
	if *memprofile != "" {
		// Probe writability up front so a typo fails before a long sweep.
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			return fmt.Errorf("opening -memprofile file: %w", ferr)
		}
		defer func() {
			if err != nil {
				f.Close()
				return // failed run: no heap snapshot
			}
			runtime.GC() // settle allocations so the profile shows live heap
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = fmt.Errorf("writing -memprofile: %w", werr)
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing -memprofile file: %w", cerr)
			}
		}()
	}

	base := experiment.DefaultConfig()
	if *quick {
		base = experiment.QuickConfig()
	}
	base.Seed = *seed
	if *shards < 0 || *shards > 1024 {
		return fmt.Errorf("-shards %d outside [0, 1024] (0 = serial engine)", *shards)
	}
	base.Shards = *shards
	base.MAC.ADR = *adr
	base.MAC.Confirmed = *confirmed
	if *fig == "adr" && (*adr || *confirmed) {
		// The ADR figure sweeps the MAC modes itself; a base-level MAC
		// override would corrupt its fixed-SF baseline column.
		return fmt.Errorf("-fig adr sweeps the MAC modes itself; drop -adr/-confirmed")
	}
	model, err := experiment.ParseMobilityModel(*scenario)
	if err != nil {
		return err
	}
	base.Mobility.Model = model
	base.Mobility.NumNodes = *nodes
	if model == experiment.MobilityBuses && *nodes != 0 {
		return fmt.Errorf("-nodes applies to the randomwaypoint/sensorgrid scenarios; the %s fleet is sized by the timetable", model)
	}
	if model != experiment.MobilityBuses && base.GatewayStrategy == gwplan.RouteAware {
		return fmt.Errorf("-scenario %s cannot use route-aware gateway placement", model)
	}
	if *fig == "7" && model != experiment.MobilityBuses {
		return fmt.Errorf("fig 7 charts the bus timetable's statistics; run it with -scenario buses")
	}

	envs, err := parseEnvs(*envName)
	if err != nil {
		return err
	}

	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir)
		if err != nil {
			return err
		}
	}
	tracer, err := openTracer(*traceFile, *traceFormat, *traceSample)
	if err != nil {
		return err
	}
	if tracer != nil {
		base.Telemetry.Trace = tracer
		// A failed flush must fail the command: a silently truncated
		// trace is worse than none.
		defer func() {
			if cerr := tracer.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trace: %w", cerr)
			}
		}()
	}

	// The observability layer: any of -listen/-progress/-spans turns on the
	// flight recorder and the live-scrape registry (both reach the engines
	// through runtime-only Telemetry fields that never touch the run-store
	// key or the results).
	var (
		flight  *obs.FlightRecorder
		metrics *obs.Registry
		tracker *obs.SweepTracker
	)
	if *listen != "" || *progress || *spansFile != "" {
		flight = obs.NewFlightRecorder(0)
		metrics = obs.NewRegistry()
		tracker = obs.NewSweepTracker()
		base.Telemetry.Spans = flight
		base.Telemetry.Live = metrics
		// A panicking sweep dumps its last spans before dying.
		defer flight.DumpOnPanic()
	}
	if *spansFile != "" {
		w := io.Writer(os.Stderr)
		if *spansFile != "-" {
			f, ferr := os.Create(*spansFile)
			if ferr != nil {
				return fmt.Errorf("opening -spans file: %w", ferr)
			}
			w = f
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("closing -spans file: %w", cerr)
				}
			}()
		}
		defer func() {
			if err == nil {
				if werr := flight.WriteJSONL(w); werr != nil {
					err = fmt.Errorf("writing -spans: %w", werr)
				}
			}
		}()
	}
	if *listen != "" {
		srv := &obs.Server{Registry: metrics, Flight: flight, Sweep: tracker,
			Title: "expsweep -fig " + *fig}
		url, stopSrv, serr := srv.Start(*listen)
		if serr != nil {
			return serr
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "expsweep: observability at %s/ (metrics, spans, pprof)\n", url)
	}

	sw := sweeper{workers: *parallel, reps: *reps, quiet: *quiet,
		store: store, percentiles: *percentiles,
		figName: *fig, tracker: tracker, progress: *progress}

	switch *fig {
	case "7", "10", "11", "ablations":
		// These artefacts run outside the sweep engine; say so rather
		// than silently dropping the flags.
		if *reps > 1 || fs.Lookup("parallel").Value.String() != fs.Lookup("parallel").DefValue {
			fmt.Fprintf(os.Stderr, "expsweep: note: -parallel/-reps apply to the figure sweeps only; -fig %s runs single-seed, serial\n", *fig)
		}
		if store != nil {
			fmt.Fprintf(os.Stderr, "expsweep: note: -store caches figure-sweep cells only; -fig %s always simulates\n", *fig)
		}
		if *percentiles {
			fmt.Fprintf(os.Stderr, "expsweep: note: -percentiles applies to the figure sweeps (figs 8/9/12/13) only\n")
		}
	case "resilience", "adr":
		if store != nil {
			fmt.Fprintf(os.Stderr, "expsweep: note: -store caches figure-sweep cells only; the %s sweep always simulates\n", *fig)
		}
	}

	switch *fig {
	case "7":
		return fig7(base)
	case "8", "9", "12", "13":
		return sw.sweepFig(base, envs)
	case "10":
		return series(base, experiment.Urban)
	case "11":
		return series(base, experiment.Rural)
	case "resilience":
		return sw.resilience(base, envs)
	case "adr":
		return sw.adr(base, envs)
	case "ablations":
		if model != experiment.MobilityBuses {
			return fmt.Errorf("the placement ablation needs the bus timetable; run -fig ablations with -scenario buses")
		}
		return ablations(base)
	case "all":
		if model == experiment.MobilityBuses {
			if err := fig7(base); err != nil {
				return err
			}
		}
		if err := sw.sweepFig(base, envs); err != nil {
			return err
		}
		if err := series(base, experiment.Urban); err != nil {
			return err
		}
		if err := series(base, experiment.Rural); err != nil {
			return err
		}
		if err := sw.resilience(base, envs); err != nil {
			return err
		}
		if *adr || *confirmed {
			// The ADR sweep needs its own fixed-SF baseline column.
			fmt.Fprintln(os.Stderr, "expsweep: note: skipping the adr figure under -adr/-confirmed (it sweeps the MAC modes itself)")
		} else if err := sw.adr(base, envs); err != nil {
			return err
		}
		if model != experiment.MobilityBuses {
			// Fig 7 and the placement ablation are timetable artefacts.
			fmt.Fprintf(os.Stderr, "expsweep: note: skipping fig 7 and ablations under -scenario %s (bus-timetable artefacts)\n", model)
			return nil
		}
		return ablations(base)
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}
}

// openTracer builds the per-packet trace pipeline for -trace: nil when
// tracing is off, otherwise a sampling tracer over a JSONL or CSV sink on
// the file (or stdout for "-"). The caller owns Close.
func openTracer(path, format string, sample int) (*telemetry.Tracer, error) {
	if path == "" {
		return nil, nil
	}
	var w io.Writer
	if path == "-" {
		// Hide stdout's Closer so the sink's Close only flushes.
		w = struct{ io.Writer }{os.Stdout}
	} else {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("opening trace file: %w", err)
		}
		w = f
	}
	var sink telemetry.Sink
	if strings.EqualFold(format, "csv") {
		sink = telemetry.NewCSVSink(w)
	} else {
		sink = telemetry.NewJSONLSink(w)
	}
	return telemetry.NewTracer(sink, sample), nil
}

func parseEnvs(name string) ([]experiment.Environment, error) {
	switch name {
	case "urban":
		return []experiment.Environment{experiment.Urban}, nil
	case "rural":
		return []experiment.Environment{experiment.Rural}, nil
	case "both":
		return []experiment.Environment{experiment.Urban, experiment.Rural}, nil
	default:
		return nil, fmt.Errorf("unknown environment %q", name)
	}
}

func fig7(base experiment.Config) error {
	active, hist, err := experiment.Fig7Data(base.Seed, base.NumRoutes, base.PeakHeadway)
	if err != nil {
		return err
	}
	fmt.Println("Fig 7a: active buses per hour")
	for h, n := range active {
		fmt.Printf("  %02d:00  %5d  %s\n", h, n, bar(n, maxInt(active)))
	}
	fmt.Println("Fig 7b: bus active-duration distribution (30 min bins)")
	counts := hist.Counts()
	for i, c := range counts {
		fmt.Printf("  %5.1fh  %5d  %s\n", hist.BinCenter(i)/3600, c, bar(c, maxInt(counts)))
	}
	return nil
}

// sweeper runs the figure sweeps through the parallel engine.
type sweeper struct {
	workers     int
	reps        int
	quiet       bool
	store       *runstore.Store
	percentiles bool
	// Observability: figName labels the tracker, tracker (when non-nil)
	// feeds the dashboard/metrics sweep gauges, progress switches the
	// per-replication stderr lines to one live status line.
	figName  string
	tracker  *obs.SweepTracker
	progress bool
}

func (sw sweeper) sweepFig(base experiment.Config, envs []experiment.Environment) error {
	for _, env := range envs {
		// Stats are cumulative since Open; report this sweep's delta.
		var before runstore.Stats
		if sw.store != nil {
			before = sw.store.Stats()
		}
		if sw.tracker != nil {
			sw.tracker.Begin(fmt.Sprintf("fig %s %s", sw.figName, env), sw.workers)
		}
		var fn func(experiment.CellUpdate)
		if sw.tracker != nil || !sw.quiet {
			fn = func(u experiment.CellUpdate) {
				sw.tracker.CellDone(u.Completed, u.Total, u.Cached, u.Result.Telemetry)
				switch {
				case sw.progress:
					// One carriage-returned line, rewritten per cell.
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s", sw.tracker.Status().Line())
				case !sw.quiet:
					from := ""
					if u.Cached {
						from = " (cached)"
					}
					fmt.Fprintf(os.Stderr, "  [%3d/%3d] rep %d seed %d%s: %s\n",
						u.Completed, u.Total, u.Rep, u.Seed, from, u.Result.String())
				}
			}
		}
		points, err := experiment.ParallelSweepFunc(base, env,
			experiment.SweepOptions{Workers: sw.workers, Reps: sw.reps, Store: sw.store}, fn)
		sw.tracker.Finish()
		if sw.progress {
			fmt.Fprintln(os.Stderr) // seal the status line
		}
		if err != nil {
			return err
		}
		if sw.store != nil {
			st := sw.store.Stats()
			fmt.Fprintf(os.Stderr, "expsweep: store %s: %d loaded, %d simulated and persisted\n",
				sw.store.Dir(), st.Hits-before.Hits, st.Puts-before.Puts)
		}
		experiment.RenderFigureTables(os.Stdout, points, sw.reps, sw.percentiles)
	}
	return nil
}

// resilience runs the outage sweep: delivery ratio per scheme as a growing
// fraction of gateways goes down for one outage window each.
func (sw sweeper) resilience(base experiment.Config, envs []experiment.Environment) error {
	for _, env := range envs {
		var fn func(string)
		if !sw.quiet {
			fn = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
		}
		points, err := experiment.OutageSweep(base, env, sw.workers, fn)
		if err != nil {
			return err
		}
		fmt.Println(experiment.OutageTable(points))
	}
	return nil
}

// adr runs the adaptive-data-rate sweep: the fixed-SF7 baseline against the
// ADR and ADR+confirmed modes, per gateway density.
func (sw sweeper) adr(base experiment.Config, envs []experiment.Environment) error {
	for _, env := range envs {
		var fn func(string)
		if !sw.quiet {
			fn = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
		}
		points, err := experiment.ADRSweep(base, env, sw.workers, fn)
		if err != nil {
			return err
		}
		fmt.Println(experiment.ADRTable(points))
	}
	return nil
}

func series(base experiment.Config, env experiment.Environment) error {
	out, err := experiment.ThroughputSeries(base, env)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig %d: msgs arriving per %s over the day — %s",
		map[experiment.Environment]int{experiment.Urban: 10, experiment.Rural: 11}[env],
		base.ThroughputBin, env)
	fmt.Println(experiment.SeriesTable(out, base.ThroughputBin, title))
	return nil
}

func ablations(base experiment.Config) error {
	fmt.Println("Ablation: EWMA weight α (ROBC)")
	byAlpha, err := experiment.AblationAlpha(base, routing.SchemeROBC, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	if err != nil {
		return err
	}
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		r := byAlpha[a]
		fmt.Printf("  α=%.1f  delay %7.1fs  delivered %d\n", a, r.Delay.Mean(), r.Delivered)
	}

	fmt.Println("Ablation: Modified Class-C vs Queue-based Class-A (ROBC)")
	modC, queueA, err := experiment.AblationClass(base, routing.SchemeROBC)
	if err != nil {
		return err
	}
	saving := 1 - queueA.RadioOnPerNode.Mean()/modC.RadioOnPerNode.Mean()
	fmt.Printf("  Modified-C : delay %7.1fs  delivered %d  radio-on %s\n",
		modC.Delay.Mean(), modC.Delivered, time.Duration(modC.RadioOnPerNode.Mean()*float64(time.Second)).Round(time.Second))
	fmt.Printf("  Queue-A    : delay %7.1fs  delivered %d  radio-on %s  (saves %.0f%%)\n",
		queueA.Delay.Mean(), queueA.Delivered, time.Duration(queueA.RadioOnPerNode.Mean()*float64(time.Second)).Round(time.Second), 100*saving)

	fmt.Println("Ablation: gateway placement (ROBC)")
	grid, random, aware, err := experiment.AblationPlacement(base, routing.SchemeROBC)
	if err != nil {
		return err
	}
	fmt.Printf("  grid        : delay %7.1fs  delivered %d\n", grid.Delay.Mean(), grid.Delivered)
	fmt.Printf("  random      : delay %7.1fs  delivered %d\n", random.Delay.Mean(), random.Delivered)
	fmt.Printf("  route-aware : delay %7.1fs  delivered %d\n", aware.Delay.Mean(), aware.Delivered)
	return nil
}

func bar(v, max int) string {
	if max <= 0 {
		return ""
	}
	n := v * 40 / max
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

var _ = mlorass.DefaultConfig // keep the public API linked for doc purposes
