package main

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFlagValidationErrors locks the satellite contract: every invalid flag
// combination fails with a descriptive error (which main turns into a
// non-zero exit), never a panic or a silently applied default.
func TestFlagValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown fig", []string{"-fig", "99"}, `unknown figure "99"`},
		{"unknown env", []string{"-env", "ocean"}, `unknown environment "ocean"`},
		{"unknown scenario", []string{"-scenario", "submarines"}, "unknown mobility scenario"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel 0 must be at least 1"},
		{"negative parallel", []string{"-parallel", "-3"}, "-parallel -3 must be at least 1"},
		{"zero reps", []string{"-reps", "0"}, "-reps 0 must be at least 1"},
		{"negative nodes", []string{"-scenario", "sensorgrid", "-nodes", "-5"}, "-nodes -5 must be non-negative"},
		{"nodes with buses", []string{"-nodes", "10"}, "-nodes applies to the randomwaypoint/sensorgrid scenarios"},
		{"positional args", []string{"-fig", "7", "extra", "arg"}, "unexpected positional arguments"},
		{"zero trace sample", []string{"-trace", "t.jsonl", "-trace-sample", "0"}, "-trace-sample 0 must be at least 1"},
		{"bad trace format", []string{"-trace", "t.jsonl", "-trace-format", "xml"}, `unknown -trace-format "xml"`},
		{"fig7 non-bus", []string{"-fig", "7", "-scenario", "randomwaypoint"}, "fig 7 charts the bus timetable"},
		{"ablations non-bus", []string{"-fig", "ablations", "-scenario", "sensorgrid"}, "placement ablation needs the bus timetable"},
		{"fig adr with -adr", []string{"-fig", "adr", "-adr"}, "-fig adr sweeps the MAC modes itself"},
		{"fig adr with -confirmed", []string{"-fig", "adr", "-confirmed"}, "-fig adr sweeps the MAC modes itself"},
		{"negative shards", []string{"-shards", "-1"}, "-shards -1 outside [0, 1024]"},
		{"huge shards", []string{"-shards", "4096"}, "-shards 4096 outside [0, 1024]"},
		{"progress non-sweep fig", []string{"-fig", "7", "-progress"}, "has no sweep cells"},
		{"progress with quiet", []string{"-fig", "8", "-progress", "-quiet"}, "contradictory"},
		{"spans clashes with trace", []string{"-fig", "8", "-spans", "t.jsonl", "-trace", "t.jsonl"}, "would interleave"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error = %q, want substring %q", tc.args, err.Error(), tc.want)
			}
		})
	}
}

// TestBadStoreDirFails checks that an unusable -store path errors out
// instead of silently disabling the cache.
func TestBadStoreDirFails(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-fig", "8", "-store", filepath.Join(file, "sub")})
	if err == nil {
		t.Fatal("store under a regular file accepted")
	}
}

// TestBadTraceFileFails checks that an unwritable -trace path errors out.
func TestBadTraceFileFails(t *testing.T) {
	err := run([]string{"-fig", "8", "-trace", filepath.Join(t.TempDir(), "missing", "t.jsonl")})
	if err == nil {
		t.Fatal("trace file in a missing directory accepted")
	}
	if !strings.Contains(err.Error(), "opening trace file") {
		t.Fatalf("error = %q", err)
	}
}

// TestFig7Runs smoke-tests the one artefact cheap enough for a CLI test.
func TestFig7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full synthetic dataset")
	}
	old := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	defer func() { os.Stdout = old }()
	if err := run([]string{"-fig", "7", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

// TestFigADRRuns smoke-tests the ADR figure end to end: the CLI renders the
// three-mode table with its baseline column.
func TestFigADRRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick ADR grid")
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := run([]string{"-fig", "adr", "-quick", "-env", "urban", "-quiet"})
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"ADR: delivery %", "fixed-SF", "ADR+confirmed", "retx"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("ADR table missing %q:\n%s", want, out)
		}
	}
}

// TestConfirmedFlagThreadsThrough checks -adr/-confirmed reach the
// simulation: the throughput series still renders under the MAC control
// plane, proving the flags compose with the classic figures rather than
// being silently dropped.
func TestConfirmedFlagThreadsThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small resilience grid")
	}
	old := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	defer func() { os.Stdout = old }()
	if err := run([]string{"-fig", "10", "-quick", "-confirmed", "-adr"}); err != nil {
		t.Fatal(err)
	}
}

// TestShardsFlagThreadsThrough checks -shards reaches the simulation: the
// throughput series renders identically on the serial engine's figure path
// whether the sweep runs on 1 tile or 4 — the CLI-level face of the sharded
// kernel's shard-count-invariance contract.
func TestShardsFlagThreadsThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick throughput series twice")
	}
	render := func(shards string) string {
		t.Helper()
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		old := os.Stdout
		os.Stdout = w
		runErr := run([]string{"-fig", "10", "-quick", "-shards", shards})
		w.Close()
		os.Stdout = old
		out, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		return string(out)
	}
	one, four := render("1"), render("4")
	if one != four {
		t.Fatalf("-shards changed the figure output:\n--- shards=1\n%s\n--- shards=4\n%s", one, four)
	}
}

// TestProfileFlags covers the -cpuprofile/-memprofile satellite: a run with
// both flags writes two non-empty pprof files on clean exit, and unwritable
// paths fail before any simulation starts.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig 7 to completion")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	old := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	defer func() { os.Stdout = old }()
	if err := run([]string{"-fig", "7", "-quick", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestBadSpansFileFails checks that an unwritable -spans path errors out
// before any simulation starts, like -trace.
func TestBadSpansFileFails(t *testing.T) {
	err := run([]string{"-fig", "8", "-spans", filepath.Join(t.TempDir(), "missing", "s.jsonl")})
	if err == nil {
		t.Fatal("spans file in a missing directory accepted")
	}
	if !strings.Contains(err.Error(), "opening -spans file") {
		t.Fatalf("error = %q", err)
	}
}

// TestListenBadAddress checks that an unparseable -listen address fails fast
// with the server's own error, before the sweep runs.
func TestListenBadAddress(t *testing.T) {
	err := run([]string{"-fig", "8", "-listen", "not-an-address:port"})
	if err == nil {
		t.Fatal("bogus -listen address accepted")
	}
	if !strings.Contains(err.Error(), "observability server") {
		t.Fatalf("error = %q", err)
	}
}

// TestListenPortInUse checks the port-collision path: -listen on an address
// something else already holds errors out synchronously instead of sweeping
// with a dead dashboard.
func TestListenPortInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run([]string{"-fig", "8", "-listen", ln.Addr().String()})
	if err == nil {
		t.Fatal("-listen on a busy port accepted")
	}
	if !strings.Contains(err.Error(), "observability server") {
		t.Fatalf("error = %q", err)
	}
}

// TestListenServesLiveSweep is the end-to-end face of the observability
// tentpole: a real fig-8 sweep with -listen prints its URL, answers /metrics
// with the core families and the sweep gauges while (or immediately after)
// cells run, serves /spans, and still exits cleanly. Under -race this doubles
// as the CLI-level mid-run scrape proof.
func TestListenServesLiveSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick fig 8 sweep")
	}
	oldOut := os.Stdout
	os.Stdout, _ = os.Open(os.DevNull)
	defer func() { os.Stdout = oldOut }()

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldErr := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = oldErr }()

	// Drain stderr continuously so the sweep can never block on the pipe,
	// and hand the first observability line to the scraper.
	urlCh := make(chan string, 1)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "observability at "); i >= 0 {
				u := strings.TrimSpace(line[i+len("observability at "):])
				u = strings.TrimSuffix(strings.Fields(u)[0], "/")
				select {
				case urlCh <- u:
				default:
				}
			}
		}
	}()

	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{"-fig", "8", "-quick", "-env", "urban",
			"-listen", "127.0.0.1:0", "-quiet"})
	}()

	var base string
	select {
	case base = <-urlCh:
	case err := <-runDone:
		t.Fatalf("run finished (%v) without printing the observability URL", err)
	case <-time.After(30 * time.Second):
		t.Fatal("no observability URL on stderr after 30s")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"mlorass_messages_generated_total",
		"mlorass_delay_seconds_bucket",
		"mlorass_sweep_cells_total",
		"mlorass_live_runs",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if dash := get("/"); !strings.Contains(dash, "expsweep -fig 8") {
		t.Error("dashboard missing its title")
	}
	get("/spans")

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	w.Close()
	<-drained
}

// TestProfileFlagBadPaths checks that profile files in missing directories
// fail fast with descriptive errors.
func TestProfileFlagBadPaths(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing", "p.prof")
	err := run([]string{"-fig", "7", "-cpuprofile", missing})
	if err == nil || !strings.Contains(err.Error(), "-cpuprofile") {
		t.Fatalf("bad -cpuprofile error = %v", err)
	}
	err = run([]string{"-fig", "7", "-memprofile", missing})
	if err == nil || !strings.Contains(err.Error(), "-memprofile") {
		t.Fatalf("bad -memprofile error = %v", err)
	}
}
