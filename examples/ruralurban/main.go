// Rural vs urban: reproduce the paper's core comparison at demo scale —
// device-to-device range is the lever (0.5 km urban, 1 km rural, Sec.
// VII-A6), and forwarding gains grow with it because rural buses can reach
// relays as far away as they can reach gateways.
//
//	go run ./examples/ruralurban
package main

import (
	"fmt"
	"os"

	"mlorass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ruralurban:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Urban (0.5 km d2d) vs rural (1 km d2d), 4 simulated hours per cell")
	fmt.Println()
	fmt.Printf("%-8s %-10s %12s %12s %8s %10s\n", "env", "scheme", "delivered", "mean delay", "hops", "handover")

	for _, env := range []mlorass.Environment{mlorass.Urban, mlorass.Rural} {
		var base *mlorass.Result
		for _, scheme := range []mlorass.Scheme{
			mlorass.SchemeNoRouting,
			mlorass.SchemeRCAETX,
			mlorass.SchemeROBC,
		} {
			cfg := mlorass.QuickConfig()
			cfg.Environment = env
			cfg.D2DRangeM = 0 // derive from environment
			cfg.Scheme = scheme
			res, err := mlorass.Run(cfg)
			if err != nil {
				return err
			}
			if scheme == mlorass.SchemeNoRouting {
				base = res
			}
			delta := ""
			if base != nil && scheme != mlorass.SchemeNoRouting && base.Delay.Mean() > 0 {
				delta = fmt.Sprintf(" (%+.0f%% delay vs NoRouting)",
					100*(res.Delay.Mean()-base.Delay.Mean())/base.Delay.Mean())
			}
			fmt.Printf("%-8s %-10s %12d %11.0fs %8.2f %10d%s\n",
				env, scheme, res.Delivered, res.Delay.Mean(), res.Hops.Mean(),
				res.HandoverSuccesses, delta)
		}
		fmt.Println()
	}
	return nil
}
