// Quickstart: run a small MLoRa-SS scenario with each forwarding scheme and
// compare delivery, delay, hop count and overhead.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"mlorass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("MLoRa-SS quickstart: 4 simulated hours of the synthetic bus network")
	fmt.Println()

	for _, scheme := range []mlorass.Scheme{
		mlorass.SchemeNoRouting,
		mlorass.SchemeRCAETX,
		mlorass.SchemeROBC,
	} {
		cfg := mlorass.QuickConfig()
		cfg.Scheme = scheme
		res, err := mlorass.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s delivered %5d/%5d (%.1f%%)  mean delay %6.0fs  hops %.2f  sends/node %.0f\n",
			scheme, res.Delivered, res.Generated, 100*res.DeliveryRatio(),
			res.Delay.Mean(), res.Hops.Mean(), res.MsgSendsPerNode.Mean())
	}

	fmt.Println()
	fmt.Println("The RCA-ETX metric is also usable standalone, outside the simulator:")
	est, err := mlorass.NewGatewayEstimator(mlorass.DefaultGatewayConfig())
	if err != nil {
		return err
	}
	cfgEst := est.Config()
	// Feed a synthetic contact pattern: three connected slots, then a
	// disconnection — the metric grows while out of contact.
	now := cfgEst.Delta
	for i := 0; i < 3; i++ {
		est.Observe(now, true, 0.05, 0)
		now += cfgEst.Delta
	}
	fmt.Printf("  after 3 connected slots:     RCA-ETX = %6.1fs  φ = %.4f\n", est.RCAETX(), est.Phi())
	for i := 0; i < 4; i++ {
		est.Observe(now, false, 0, 0)
		now += cfgEst.Delta
	}
	fmt.Printf("  after 4 disconnected slots:  RCA-ETX = %6.1fs  φ = %.4f\n", est.RCAETX(), est.Phi())
	fmt.Printf("  greedy rule vs a fresh neighbour (ETX 60s over a 100s link): forward = %v\n",
		mlorass.ShouldForwardGreedy(est.RCAETX(), 60, 100))
	return nil
}
