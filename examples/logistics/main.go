// Logistics: the paper's motivating use case — LoRa trackers on high-value
// parcels riding a vehicle fleet (Sec. VII-A: "LoRa devices are attached to
// high-value parcels to track and report their conditions in real-time").
//
// This example builds a custom dataset (a small delivery fleet over a town-
// sized area), runs ROBC against plain LoRaWAN, and reports what forwarding
// buys the parcels that ride poorly-covered routes.
//
//	go run ./examples/logistics
package main

import (
	"fmt"
	"os"
	"time"

	"mlorass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "logistics:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 6 km × 6 km town with two warehouse corridors: the northern one
	// passes the depot gateways, the southern one threads between them.
	area := mlorass.SquareArea(6000)
	routes := []mlorass.Route{
		{
			ID:       "NORTH",
			SpeedMPS: 6,
			Points: []mlorass.Point{
				{X: 500, Y: 4500}, {X: 2000, Y: 4300}, {X: 3500, Y: 4600}, {X: 5500, Y: 4400},
			},
		},
		{
			ID:       "SOUTH",
			SpeedMPS: 5,
			Points: []mlorass.Point{
				{X: 500, Y: 1500}, {X: 2000, Y: 1400}, {X: 3500, Y: 1700}, {X: 5500, Y: 1500},
			},
		},
		{
			ID:       "CROSS",
			SpeedMPS: 7,
			Points: []mlorass.Point{
				{X: 3000, Y: 500}, {X: 3000, Y: 2500}, {X: 2900, Y: 4500}, {X: 3000, Y: 5500},
			},
		},
	}
	var trips []mlorass.Trip
	id := 0
	// Vans leave every 12 minutes on each corridor through the working day.
	for _, route := range routes {
		for _, reverse := range []bool{false, true} {
			for start := 6 * time.Hour; start < 20*time.Hour; start += 12 * time.Minute {
				trips = append(trips, mlorass.Trip{
					ID:       id,
					RouteID:  route.ID,
					Start:    start,
					Duration: 90 * time.Minute,
					Reverse:  reverse,
				})
				id++
			}
		}
	}
	dataset := &mlorass.Dataset{Area: area, Routes: routes, Trips: trips}

	fmt.Printf("Delivery fleet: %d routes, %d van shifts, %d gateways near the northern corridor\n\n",
		len(routes), len(trips), 4)

	for _, scheme := range []mlorass.Scheme{mlorass.SchemeNoRouting, mlorass.SchemeROBC} {
		cfg := mlorass.DefaultConfig()
		cfg.Dataset = dataset
		cfg.Scheme = scheme
		cfg.Environment = mlorass.Urban
		cfg.NumGateways = 4
		cfg.Duration = 24 * time.Hour
		res, err := mlorass.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s delivered %5d/%5d (%.1f%%)  mean delay %6.0fs  p95 %6.0fs  hops %.2f\n",
			scheme, res.Delivered, res.Generated, 100*res.DeliveryRatio(),
			res.Delay.Mean(), res.DelayPercentile(95), res.Hops.Mean())
	}

	fmt.Println("\nParcels on the southern corridor have no direct gateway contact;")
	fmt.Println("with ROBC their telemetry exits through vans on the crossing route.")
	return nil
}
